//! An elastic, lazily-spawned pool for detached tasks.
//!
//! This is the fire-and-forget sibling of the exact kernels' persistent
//! region pool (`crates/exact/src/parallel.rs`): the same worker lifecycle —
//! workers spawn on demand, park on a condvar between tasks, retire past a
//! watermark, and are joined when the pool drops — but tasks are `'static`
//! and detached instead of forming a barriered region. The HTTP server uses
//! one of these as its *streamer set*: long-lived streaming responses
//! (Server-Sent Events) are handed off here so they stop pinning
//! request-handling pool workers.
//!
//! Elasticity: a submitted task wakes an idle worker when one is parked,
//! otherwise spawns a new worker (up to `max_workers`). Workers idle past
//! `idle_ttl` retire, so a burst of long-lived streams does not pin threads
//! forever once the streams end. Dropping the pool signals shutdown and
//! joins workers under a deadline; workers that are still mid-task when the
//! deadline passes are detached (their tasks keep a strong handle on the
//! shared state, so they finish and exit cleanly on their own).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

type Task = Box<dyn FnOnce() + Send + 'static>;

struct State {
    tasks: VecDeque<Task>,
    /// Handles of workers; finished ones are reaped on the next spawn.
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Workers currently in their run loop.
    live: usize,
    /// Workers parked on the condvar waiting for a task.
    idle: usize,
    /// Retire watermark: workers above this count exit once the queue is
    /// empty.
    max_workers: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals queued work, shutdown and shrink to parked workers.
    work: Condvar,
    /// Signals `live` reaching zero to a dropping owner.
    drained: Condvar,
    name: String,
    idle_ttl: Duration,
}

/// An elastic pool executing detached `'static` tasks on named worker
/// threads.
///
/// # Examples
///
/// ```
/// use mathcloud_telemetry::workpool::WorkPool;
/// use std::sync::mpsc;
///
/// let pool = WorkPool::new("demo", 4, std::time::Duration::from_millis(50));
/// let (tx, rx) = mpsc::channel();
/// assert!(pool.spawn(move || tx.send(42).unwrap()));
/// assert_eq!(rx.recv().unwrap(), 42);
/// ```
pub struct WorkPool {
    shared: Arc<Shared>,
    /// Total workers ever spawned — the spawn-amortization counter.
    spawned: AtomicUsize,
    /// How long `Drop` waits for in-flight tasks before detaching workers.
    drain_grace: Duration,
}

impl WorkPool {
    /// Creates an empty pool growing on demand up to `max_workers`; workers
    /// idle past `idle_ttl` retire.
    pub fn new(name: &str, max_workers: usize, idle_ttl: Duration) -> WorkPool {
        WorkPool {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    tasks: VecDeque::new(),
                    handles: Vec::new(),
                    live: 0,
                    idle: 0,
                    max_workers,
                    shutdown: false,
                }),
                work: Condvar::new(),
                drained: Condvar::new(),
                name: name.to_string(),
                idle_ttl,
            }),
            spawned: AtomicUsize::new(0),
            drain_grace: Duration::from_secs(1),
        }
    }

    /// Sets how long [`Drop`] waits for in-flight tasks (builder style).
    pub fn with_drain_grace(mut self, grace: Duration) -> WorkPool {
        self.drain_grace = grace;
        self
    }

    /// Queues `task`, waking an idle worker or spawning one when all are
    /// busy and the watermark allows. Returns `false` (dropping the task)
    /// after shutdown began.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) -> bool {
        let mut s = self.shared.state.lock().expect("workpool poisoned");
        if s.shutdown {
            return false;
        }
        s.tasks.push_back(Box::new(task));
        if s.idle == 0 && s.live < s.max_workers {
            // Reap finished handles so churn does not accumulate them.
            let mut finished = Vec::new();
            let mut i = 0;
            while i < s.handles.len() {
                if s.handles[i].is_finished() {
                    finished.push(s.handles.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            let shared = Arc::clone(&self.shared);
            let id = self.spawned.fetch_add(1, Ordering::SeqCst);
            let handle = std::thread::Builder::new()
                .name(format!("{}-{id}", self.shared.name))
                .spawn(move || worker_loop(&shared))
                .expect("spawn workpool worker");
            s.handles.push(handle);
            s.live += 1;
            drop(s);
            for h in finished {
                let _ = h.join();
            }
        } else {
            drop(s);
        }
        self.shared.work.notify_one();
        true
    }

    /// Workers currently alive (parked or mid-task).
    pub fn live_workers(&self) -> usize {
        self.shared.state.lock().expect("workpool poisoned").live
    }

    /// Tasks queued but not yet picked up.
    pub fn queued(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("workpool poisoned")
            .tasks
            .len()
    }

    /// Total worker threads ever spawned by this pool.
    pub fn spawned_total(&self) -> usize {
        self.spawned.load(Ordering::SeqCst)
    }

    /// Sets the retire watermark. Surplus workers exit once the queue is
    /// empty; growth stays lazy.
    pub fn resize(&self, max_workers: usize) {
        let mut s = self.shared.state.lock().expect("workpool poisoned");
        s.max_workers = max_workers;
        drop(s);
        self.shared.work.notify_all();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut s = shared.state.lock().expect("workpool poisoned");
            loop {
                if s.shutdown || s.live > s.max_workers {
                    s.live -= 1;
                    if s.live == 0 {
                        shared.drained.notify_all();
                    }
                    return;
                }
                if let Some(task) = s.tasks.pop_front() {
                    break task;
                }
                s.idle += 1;
                let (guard, timeout) = shared
                    .work
                    .wait_timeout(s, shared.idle_ttl)
                    .expect("workpool poisoned");
                s = guard;
                s.idle -= 1;
                // Idle-retire: nothing arrived for a full TTL and nothing is
                // queued now — this worker is surplus capacity.
                if timeout.timed_out() && s.tasks.is_empty() && !s.shutdown {
                    s.live -= 1;
                    if s.live == 0 {
                        shared.drained.notify_all();
                    }
                    return;
                }
            }
        };
        task();
    }
}

impl Drop for WorkPool {
    /// Signals shutdown, drops queued-but-unstarted tasks, and joins workers
    /// that finish within the drain grace; stragglers are detached and exit
    /// on their own once their task returns.
    fn drop(&mut self) {
        let deadline = Instant::now() + self.drain_grace;
        let handles = {
            let mut s = self.shared.state.lock().expect("workpool poisoned");
            s.shutdown = true;
            s.tasks.clear();
            self.shared.work.notify_all();
            while s.live > 0 {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self
                    .shared
                    .drained
                    .wait_timeout(s, deadline - now)
                    .expect("workpool poisoned");
                s = guard;
            }
            std::mem::take(&mut s.handles)
        };
        for handle in handles {
            if handle.is_finished() {
                let _ = handle.join();
            }
            // Unfinished workers are detached: they hold an Arc of the
            // shared state and exit as soon as their current task returns.
        }
    }
}

impl std::fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkPool")
            .field("name", &self.shared.name)
            .field("live", &self.live_workers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn tasks_run_and_results_arrive() {
        let pool = WorkPool::new("wp-test", 4, Duration::from_millis(100));
        let (tx, rx) = mpsc::channel();
        for i in 0..16 {
            let tx = tx.clone();
            assert!(pool.spawn(move || tx.send(i).unwrap()));
        }
        let mut got: Vec<i32> = (0..16).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        assert!(pool.spawned_total() <= 4, "bounded by the watermark");
    }

    #[test]
    fn grows_elastically_for_concurrent_long_tasks() {
        let pool = WorkPool::new("wp-grow", 8, Duration::from_millis(100));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let (tx, rx) = mpsc::channel();
        for _ in 0..6 {
            let gate = Arc::clone(&gate);
            let tx = tx.clone();
            pool.spawn(move || {
                tx.send(()).unwrap();
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
        }
        // All six tasks must be running concurrently — none queued behind
        // a busy worker.
        for _ in 0..6 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(pool.live_workers(), 6);
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    #[test]
    fn idle_workers_retire_after_ttl() {
        let pool = WorkPool::new("wp-retire", 4, Duration::from_millis(30));
        let (tx, rx) = mpsc::channel();
        pool.spawn(move || tx.send(()).unwrap());
        rx.recv().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.live_workers() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(pool.live_workers(), 0, "idle worker did not retire");
    }

    #[test]
    fn spawn_after_drop_signal_is_rejected() {
        let pool = WorkPool::new("wp-shut", 2, Duration::from_millis(50));
        let shared = Arc::clone(&pool.shared);
        drop(pool);
        assert!(shared.state.lock().unwrap().shutdown);
    }

    #[test]
    fn drop_joins_parked_workers_promptly() {
        let pool = WorkPool::new("wp-drop", 2, Duration::from_secs(60));
        let (tx, rx) = mpsc::channel();
        pool.spawn(move || tx.send(()).unwrap());
        rx.recv().unwrap();
        let start = Instant::now();
        drop(pool);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drop must not wait out the idle TTL"
        );
    }
}
