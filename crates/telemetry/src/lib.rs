//! Observability substrate for the MathCloud platform.
//!
//! The paper's evaluation (§4) hinges on measuring platform overhead, and its
//! catalogue (§3.2) already monitors service availability — but the seed
//! reproduction had no way to observe a *running* container. This crate is the
//! missing substrate: a process-wide [`MetricsRegistry`] with lock-cheap
//! atomic counters, gauges and fixed-bucket histograms; structured tracing
//! ([`Span`]/[`Event`]) with monotonic timestamps, a bounded ring-buffer
//! [`Recorder`], and request-id propagation via the `X-MC-Request-Id` header;
//! and Prometheus-style text exposition for `GET /metrics`.
//!
//! Everything here is std-only — no external crates — so the whole workspace
//! builds with zero registry access. The [`sync`] module provides
//! poison-recovering `Mutex`/`RwLock`/`Condvar` wrappers with a
//! `parking_lot`-style API (guards returned directly, no `Result`), used
//! throughout the platform in place of the former `parking_lot` dependency.
//! The [`rng`] module hosts the small xorshift PRNG used for trace sampling,
//! randomized tests and benchmark data generation.
//!
//! # Quick tour
//!
//! ```
//! use mathcloud_telemetry::metrics;
//! use std::time::Duration;
//!
//! let reqs = metrics::global().counter("demo_requests_total", &[("route", "/jobs")]);
//! reqs.inc();
//!
//! let lat = metrics::global().histogram("demo_latency_seconds", &[]);
//! lat.observe_duration(Duration::from_millis(3));
//!
//! let text = metrics::global().render_prometheus();
//! assert!(text.contains("demo_requests_total{route=\"/jobs\"} 1"));
//! ```

pub mod autoscale;
pub mod expose;
pub mod metrics;
pub mod rng;
pub mod sync;
pub mod trace;
pub mod workpool;

pub use autoscale::{
    AutoscaleConfig, AutoscaleHandle, PoolController, PoolStatus, ScalableTarget, ScaleDirection,
    ScaleEvent,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use rng::XorShift64;
pub use trace::{next_request_id, Event, Level, Recorder, SpanGuard, REQUEST_ID_HEADER};

/// Seconds elapsed since the process-wide monotonic anchor was first touched.
///
/// Used for container uptime reporting; the anchor is initialized lazily on
/// first use of any telemetry facility.
pub fn uptime() -> std::time::Duration {
    trace::monotonic_now()
}
