//! Structured tracing: spans, events, a bounded ring-buffer recorder and
//! request-id propagation.
//!
//! Timestamps are monotonic `Duration`s since a process-wide anchor (first
//! telemetry touch), so recorded spans order correctly even if the wall clock
//! steps. Request ids are generated at the HTTP server edge (or supplied by
//! the client in the `X-MC-Request-Id` header) and threaded through
//! container → job manager → adapter → response, letting one logical request
//! be correlated across every component it crossed.

use crate::rng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The header carrying the request id end to end.
pub const REQUEST_ID_HEADER: &str = "X-MC-Request-Id";

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Monotonic time since the process-wide anchor.
pub(crate) fn monotonic_now() -> Duration {
    anchor().elapsed()
}

/// Generate a fresh request id: 16 lowercase hex chars, unique per process
/// (counter-based) and distinct across processes (seeded from wall clock and
/// pid).
pub fn next_request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        rng::splitmix64(nanos ^ ((std::process::id() as u64) << 32))
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{:016x}", rng::splitmix64(seed.wrapping_add(n)))
}

/// Whether a client-supplied request id is safe to echo and record: 1–128
/// visible ASCII characters, no spaces, quotes or control bytes.
pub fn is_valid_request_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 128
        && id
            .bytes()
            .all(|b| (0x21..=0x7e).contains(&b) && b != b'"' && b != b'\\')
}

/// Event severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Debug,
    Info,
    Warn,
    Error,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }
}

/// One recorded occurrence: a log-like event, or the completion of a span
/// (in which case `duration` is set).
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic timestamp since the process anchor.
    pub ts: Duration,
    pub level: Level,
    pub name: String,
    pub request_id: Option<String>,
    pub fields: Vec<(String, String)>,
    /// For span-completion events: how long the span ran.
    pub duration: Option<Duration>,
}

impl Event {
    /// Single-line rendering, for dumping the ring buffer to a terminal.
    pub fn render(&self) -> String {
        let mut s = format!(
            "[{:>12.6}] {:5} {}",
            self.ts.as_secs_f64(),
            self.level.as_str(),
            self.name
        );
        if let Some(rid) = &self.request_id {
            s.push_str(&format!(" rid={rid}"));
        }
        if let Some(d) = self.duration {
            s.push_str(&format!(" duration={:.6}s", d.as_secs_f64()));
        }
        for (k, v) in &self.fields {
            s.push_str(&format!(" {k}={v}"));
        }
        s
    }
}

/// Bounded ring buffer of [`Event`]s. When full, the oldest event is dropped:
/// recording is O(1) and the buffer never grows past its capacity, so leaving
/// tracing always-on costs a bounded amount of memory.
pub struct Recorder {
    buf: Mutex<VecDeque<Event>>,
    cap: usize,
}

impl Recorder {
    pub fn new(cap: usize) -> Self {
        Recorder {
            buf: Mutex::new(VecDeque::with_capacity(cap.min(4096))),
            cap: cap.max(1),
        }
    }

    /// The process-wide recorder (capacity 2048 events).
    pub fn global() -> &'static Recorder {
        static GLOBAL: OnceLock<Recorder> = OnceLock::new();
        GLOBAL.get_or_init(|| Recorder::new(2048))
    }

    pub fn record(&self, event: Event) {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(event);
    }

    /// Record a plain event at `level`.
    pub fn emit(
        &self,
        level: Level,
        name: &str,
        request_id: Option<&str>,
        fields: &[(&str, &str)],
    ) {
        self.record(Event {
            ts: monotonic_now(),
            level,
            name: name.to_string(),
            request_id: request_id.map(str::to_string),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            duration: None,
        });
    }

    /// Start a span; the completion event (with duration) is recorded when the
    /// returned guard is dropped or [`SpanGuard::finish`]ed.
    pub fn span(&self, name: &str, request_id: Option<&str>) -> SpanGuard<'_> {
        SpanGuard {
            recorder: self,
            name: name.to_string(),
            request_id: request_id.map(str::to_string),
            fields: Vec::new(),
            start: Instant::now(),
            start_ts: monotonic_now(),
            done: false,
        }
    }

    /// Snapshot of all buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        buf.iter().cloned().collect()
    }

    /// Buffered events carrying the given request id, oldest first.
    pub fn events_for(&self, request_id: &str) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| e.request_id.as_deref() == Some(request_id))
            .collect()
    }

    /// Remove and return the buffered events carrying the given request id,
    /// oldest first. Unrelated events stay in the buffer. This backs
    /// `GET /trace?request_id=…`: each trace is handed out once, so polling
    /// clients don't re-download (or re-report) spans they already saw, and
    /// drained ids stop occupying ring-buffer capacity.
    pub fn drain_for(&self, request_id: &str) -> Vec<Event> {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        let mut drained = Vec::new();
        let mut kept = VecDeque::with_capacity(buf.len());
        for ev in buf.drain(..) {
            if ev.request_id.as_deref() == Some(request_id) {
                drained.push(ev);
            } else {
                kept.push_back(ev);
            }
        }
        *buf = kept;
        drained
    }

    pub fn len(&self) -> usize {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// An in-flight span. Records a completion event on drop.
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    name: String,
    request_id: Option<String>,
    fields: Vec<(String, String)>,
    start: Instant,
    start_ts: Duration,
    done: bool,
}

impl SpanGuard<'_> {
    /// Attach a key/value field to the span's completion event.
    pub fn field(&mut self, key: &str, value: &str) {
        self.fields.push((key.to_string(), value.to_string()));
    }

    /// End the span now, returning its duration.
    pub fn finish(mut self) -> Duration {
        let d = self.start.elapsed();
        self.complete(d);
        d
    }

    fn complete(&mut self, duration: Duration) {
        if self.done {
            return;
        }
        self.done = true;
        self.recorder.record(Event {
            ts: self.start_ts,
            level: Level::Info,
            name: self.name.clone(),
            request_id: self.request_id.take(),
            fields: std::mem::take(&mut self.fields),
            duration: Some(duration),
        });
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let d = self.start.elapsed();
        self.complete(d);
    }
}

/// Record an info event on the global recorder.
pub fn info(name: &str, request_id: Option<&str>, fields: &[(&str, &str)]) {
    Recorder::global().emit(Level::Info, name, request_id, fields);
}

/// Record a warning event on the global recorder.
pub fn warn(name: &str, request_id: Option<&str>, fields: &[(&str, &str)]) {
    Recorder::global().emit(Level::Warn, name, request_id, fields);
}

/// Record an error event on the global recorder.
pub fn error(name: &str, request_id: Option<&str>, fields: &[(&str, &str)]) {
    Recorder::global().emit(Level::Error, name, request_id, fields);
}

/// Start a span on the global recorder.
pub fn span(name: &str, request_id: Option<&str>) -> SpanGuard<'static> {
    Recorder::global().span(name, request_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_unique_and_valid() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = next_request_id();
            assert_eq!(id.len(), 16);
            assert!(id.bytes().all(|b| b.is_ascii_hexdigit()));
            assert!(is_valid_request_id(&id));
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn request_id_validation_rejects_junk() {
        assert!(!is_valid_request_id(""));
        assert!(!is_valid_request_id("has space"));
        assert!(!is_valid_request_id("tab\there"));
        assert!(!is_valid_request_id("quo\"te"));
        assert!(!is_valid_request_id(&"x".repeat(129)));
        assert!(is_valid_request_id("client-supplied-id-42"));
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let rec = Recorder::new(3);
        for i in 0..5 {
            rec.emit(Level::Info, &format!("e{i}"), None, &[]);
        }
        let names: Vec<String> = rec.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["e2", "e3", "e4"]);
        assert_eq!(rec.len(), 3);
    }

    #[test]
    fn spans_record_duration_and_request_id() {
        let rec = Recorder::new(16);
        {
            let mut span = rec.span("job.run", Some("rid-1"));
            span.field("service", "inverse");
            std::thread::sleep(Duration::from_millis(2));
        }
        let evs = rec.events_for("rid-1");
        assert_eq!(evs.len(), 1);
        let ev = &evs[0];
        assert_eq!(ev.name, "job.run");
        assert!(ev.duration.expect("span has duration") >= Duration::from_millis(1));
        assert_eq!(
            ev.fields,
            vec![("service".to_string(), "inverse".to_string())]
        );
        assert!(ev.render().contains("rid=rid-1"));
    }

    #[test]
    fn timestamps_are_monotonic() {
        let rec = Recorder::new(64);
        for i in 0..10 {
            rec.emit(Level::Debug, &format!("t{i}"), None, &[]);
        }
        let evs = rec.events();
        assert!(evs.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn drain_for_removes_only_matching_events() {
        let rec = Recorder::new(16);
        rec.emit(Level::Info, "a1", Some("rid-a"), &[]);
        rec.emit(Level::Info, "b1", Some("rid-b"), &[]);
        rec.emit(Level::Info, "a2", Some("rid-a"), &[]);
        rec.emit(Level::Info, "anon", None, &[]);

        let drained = rec.drain_for("rid-a");
        assert_eq!(
            drained.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            vec!["a1", "a2"],
            "drained oldest-first"
        );
        // Second drain finds nothing: the trace was handed out exactly once.
        assert!(rec.drain_for("rid-a").is_empty());
        // Unrelated events survive, in order.
        let names: Vec<String> = rec.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["b1", "anon"]);
    }

    #[test]
    fn finish_is_idempotent_with_drop() {
        let rec = Recorder::new(16);
        let span = rec.span("once", None);
        span.finish();
        assert_eq!(rec.len(), 1);
    }
}
