//! Prometheus text exposition format (version 0.0.4).
//!
//! Renders a [`MetricsRegistry`] as the plain-text format Prometheus scrapes:
//! `# HELP` / `# TYPE` headers, one sample line per label set, histograms
//! expanded into cumulative `_bucket{le=...}` series plus `_sum` and
//! `_count`. Label values are escaped per the spec (backslash, double quote
//! and newline).

use crate::metrics::{Metric, MetricsRegistry};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a `# HELP` text: `\` → `\\`, newline → `\n`.
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Format a float the way Prometheus expects (`+Inf`, integers without
/// trailing noise, everything else via Rust's shortest-roundtrip formatter).
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render the registry in the text exposition format. Families are sorted by
/// name and label sets within a family are sorted, so output is deterministic.
pub fn render(registry: &MetricsRegistry) -> String {
    let metrics = registry.metrics.read().unwrap_or_else(|e| e.into_inner());
    let help = registry.help.read().unwrap_or_else(|e| e.into_inner());

    // Group samples into families by metric name.
    let mut families: BTreeMap<String, Vec<(Vec<(String, String)>, Metric)>> = BTreeMap::new();
    for (key, metric) in metrics.iter() {
        families
            .entry(key.name.clone())
            .or_default()
            .push((key.labels.clone(), metric.clone()));
    }

    let mut out = String::new();
    for (name, mut samples) in families {
        samples.sort_by(|a, b| a.0.cmp(&b.0));
        let kind = match samples[0].1 {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        };
        if let Some(h) = help.get(&name) {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(h));
        }
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for (labels, metric) in samples {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name}{} {}", label_block(&labels, None), c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name}{} {}", label_block(&labels, None), g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (i, n) in snap.buckets.iter().enumerate() {
                        cumulative += n;
                        let le = if i < snap.bounds.len() {
                            fmt_f64(snap.bounds[i])
                        } else {
                            "+Inf".to_string()
                        };
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            label_block(&labels, Some(("le", &le)))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        label_block(&labels, None),
                        fmt_f64(snap.sum)
                    );
                    let _ = writeln!(
                        out,
                        "{name}_count{} {}",
                        label_block(&labels, None),
                        snap.count
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_rules() {
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        assert_eq!(escape_help("back\\slash\nnl"), "back\\\\slash\\nnl");
        // Double quotes are NOT escaped in help text, only in label values.
        assert_eq!(escape_help("a \"quote\""), "a \"quote\"");
    }

    #[test]
    fn renders_counters_gauges_histograms() {
        let reg = MetricsRegistry::new();
        reg.describe("hits_total", "total hits");
        reg.counter("hits_total", &[("route", "/jobs")]).add(3);
        reg.gauge("depth", &[]).set(-4);
        let h = reg.histogram_with("lat_seconds", &[("svc", "inv")], &[0.5, 1.0]);
        h.observe(0.25);
        h.observe(0.75);
        h.observe(2.0);

        let text = reg.render_prometheus();
        assert!(text.contains("# HELP hits_total total hits"));
        assert!(text.contains("# TYPE hits_total counter"));
        assert!(text.contains("hits_total{route=\"/jobs\"} 3"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth -4"));
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{svc=\"inv\",le=\"0.5\"} 1"));
        assert!(text.contains("lat_seconds_bucket{svc=\"inv\",le=\"1\"} 2"));
        assert!(text.contains("lat_seconds_bucket{svc=\"inv\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_count{svc=\"inv\"} 3"));
        assert!(text.contains("lat_seconds_sum{svc=\"inv\"} 3"));
    }

    #[test]
    fn label_values_are_escaped_in_output() {
        let reg = MetricsRegistry::new();
        reg.counter("odd_total", &[("name", "a\"b\\c\nd")]).inc();
        let text = reg.render_prometheus();
        assert!(
            text.contains(r#"odd_total{name="a\"b\\c\nd"} 1"#),
            "got: {text}"
        );
    }

    #[test]
    fn output_is_deterministic_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total", &[]).inc();
        reg.counter("a_total", &[("z", "1")]).inc();
        reg.counter("a_total", &[("a", "1")]).inc();
        let text = reg.render_prometheus();
        let a_pos = text.find("# TYPE a_total").unwrap();
        let b_pos = text.find("# TYPE b_total").unwrap();
        assert!(a_pos < b_pos);
        assert!(text.find("a_total{a=\"1\"}").unwrap() < text.find("a_total{z=\"1\"}").unwrap());
        assert_eq!(text, reg.render_prometheus());
    }
}
