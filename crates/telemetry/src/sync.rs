//! Poison-recovering `Mutex`/`RwLock`/`Condvar` wrappers with a
//! `parking_lot`-style API: `lock()`/`read()`/`write()` return guards
//! directly, and `Condvar::wait`/`wait_for` take `&mut MutexGuard`.
//!
//! The platform treats lock poisoning the way `parking_lot` does — a panicked
//! holder does not make the data unreachable; jobs already run under
//! `catch_unwind`, so state behind a poisoned lock is still well-formed
//! enough to serve (a failed job record, a partial stat). All wrappers
//! recover with `PoisonError::into_inner`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion, `parking_lot`-style: `lock()` returns the guard.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Guard for [`Mutex`]. Internally an `Option` so [`Condvar::wait_for`] can
/// temporarily take the underlying std guard by value; it is always `Some`
/// outside those calls.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

/// Reader-writer lock, `parking_lot`-style: `read()`/`write()` return guards.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// Condition variable whose wait methods take `&mut MutexGuard`, matching the
/// `parking_lot` calling convention used throughout the platform.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during condvar wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Wait with a timeout; returns whether the timeout elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken during condvar wait");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let _held = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(10));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 10);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(15));
        assert!(!*g, "guard usable after timed-out wait");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = shared.clone();
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                let r = cv.wait_for(&mut g, Duration::from_secs(5));
                if r.timed_out() {
                    return false;
                }
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*shared;
        *m.lock() = true;
        cv.notify_all();
        assert!(waiter.join().unwrap());
    }
}
