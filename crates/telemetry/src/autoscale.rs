//! Adaptive handler-pool autoscaling.
//!
//! PR 1 gave every container the signals (`mc_pool_queue_depth`,
//! `mc_pool_busy_workers`, `mc_job_wait_seconds`); this module closes the
//! loop: a [`PoolController`] samples a [`ScalableTarget`] on a configurable
//! tick and grows or shrinks its worker pool between `min_workers` and
//! `max_workers` with hysteresis — scale up on *sustained* queue depth or
//! saturation above the high watermark, scale down only after several
//! consecutive idle ticks. Decisions are observable as the
//! `mc_pool_scale_events` counter (labelled by pool and direction) and
//! `pool.scale` trace events.
//!
//! The controller is deliberately split from any particular pool: the Everest
//! container's handler pool and the batch system's elastic core set both
//! implement [`ScalableTarget`]. Ticks can be driven manually
//! ([`PoolController::tick`] — what the deterministic load tests do) or by a
//! background thread ([`PoolController::spawn`]).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::{self, Counter};
use crate::trace;

/// A point-in-time load sample of a worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStatus {
    /// Current pool size (desired workers; retiring workers excluded).
    pub workers: usize,
    /// Workers currently executing a job.
    pub busy: usize,
    /// Jobs queued behind the pool.
    pub queue_depth: usize,
}

impl PoolStatus {
    /// Pool saturation: busy workers over pool size.
    ///
    /// A zero-worker pool with pending work is infinitely saturated (any
    /// watermark comparison triggers a scale-up); a zero-worker pool with
    /// nothing to do reports 0.0. This avoids the NaN/division-by-zero trap
    /// while keeping "empty and idle" distinguishable from "empty and
    /// drowning".
    pub fn saturation(&self) -> f64 {
        if self.workers == 0 {
            if self.busy > 0 || self.queue_depth > 0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.busy as f64 / self.workers as f64
        }
    }
}

/// A pool the controller can observe and resize.
pub trait ScalableTarget: Send + Sync {
    /// Samples the pool's current load.
    fn pool_status(&self) -> PoolStatus;

    /// Resizes the pool toward `workers`, returning the size actually
    /// applied (implementations may clamp, e.g. to in-flight work).
    fn scale_to(&self, workers: usize) -> usize;
}

/// Controller knobs. See the field docs for watermark semantics; defaults are
/// conservative enough for interactive services.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleConfig {
    /// The pool never shrinks below this (also the initial size configs use).
    pub min_workers: usize,
    /// The pool never grows above this. `min_workers == max_workers` turns
    /// the controller into a no-op.
    pub max_workers: usize,
    /// Saturation at or above this counts the tick as *hot*.
    pub high_watermark: f64,
    /// Saturation at or below this (with an empty queue) counts the tick as
    /// *idle*. Between the watermarks the controller holds steady.
    pub low_watermark: f64,
    /// Queue depth at or above this counts the tick as hot regardless of
    /// saturation.
    pub queue_high: usize,
    /// Consecutive hot ticks required before scaling up (burst debounce).
    pub sustain_ticks: usize,
    /// Consecutive idle ticks required before scaling down (drain debounce).
    pub idle_ticks: usize,
    /// Workers added per scale-up step.
    pub step_up: usize,
    /// Workers removed per scale-down step.
    pub step_down: usize,
    /// Sampling interval for the background driver ([`PoolController::spawn`]).
    pub tick: Duration,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            min_workers: 1,
            max_workers: 8,
            high_watermark: 0.9,
            low_watermark: 0.5,
            queue_high: 2,
            sustain_ticks: 2,
            idle_ticks: 3,
            step_up: 2,
            step_down: 1,
            tick: Duration::from_millis(100),
        }
    }
}

impl AutoscaleConfig {
    /// Validates the knobs, returning a human-readable complaint.
    ///
    /// # Errors
    ///
    /// A message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_workers == 0 {
            return Err("min_workers must be at least 1".into());
        }
        if self.max_workers < self.min_workers {
            return Err(format!(
                "max_workers ({}) must be >= min_workers ({})",
                self.max_workers, self.min_workers
            ));
        }
        for (name, v) in [
            ("high_watermark", self.high_watermark),
            ("low_watermark", self.low_watermark),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be within [0, 1], got {v}"));
            }
        }
        if self.low_watermark > self.high_watermark {
            return Err(format!(
                "low_watermark ({}) must be <= high_watermark ({})",
                self.low_watermark, self.high_watermark
            ));
        }
        if self.sustain_ticks == 0 || self.idle_ticks == 0 {
            return Err("sustain_ticks and idle_ticks must be at least 1".into());
        }
        if self.step_up == 0 || self.step_down == 0 {
            return Err("step_up and step_down must be at least 1".into());
        }
        Ok(())
    }
}

/// Which way a scaling decision moved the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDirection {
    Up,
    Down,
}

impl ScaleDirection {
    pub fn as_str(self) -> &'static str {
        match self {
            ScaleDirection::Up => "up",
            ScaleDirection::Down => "down",
        }
    }
}

/// One applied scaling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    pub direction: ScaleDirection,
    /// Pool size before the decision.
    pub from: usize,
    /// Pool size the target actually applied.
    pub to: usize,
    /// The load sample that triggered the decision.
    pub status: PoolStatus,
}

/// The autoscaling controller for one pool.
pub struct PoolController {
    label: String,
    target: Arc<dyn ScalableTarget>,
    config: AutoscaleConfig,
    hot_run: usize,
    idle_run: usize,
    ups: Counter,
    downs: Counter,
    observer: Option<Box<dyn Fn(&ScaleEvent) + Send + Sync>>,
}

impl PoolController {
    /// Creates a controller over `target`; `label` becomes the `pool` label
    /// on `mc_pool_scale_events` and the `pool.scale` trace events.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid ([`AutoscaleConfig::validate`]).
    pub fn new(label: &str, target: Arc<dyn ScalableTarget>, config: AutoscaleConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid autoscale config for pool {label:?}: {e}");
        }
        let reg = metrics::global();
        reg.describe(
            "mc_pool_scale_events",
            "autoscaler decisions applied, by pool and direction",
        );
        PoolController {
            label: label.to_string(),
            ups: reg.counter(
                "mc_pool_scale_events",
                &[("pool", label), ("direction", "up")],
            ),
            downs: reg.counter(
                "mc_pool_scale_events",
                &[("pool", label), ("direction", "down")],
            ),
            target: Arc::clone(&target),
            config,
            hot_run: 0,
            idle_run: 0,
            observer: None,
        }
    }

    /// Registers a callback invoked after every applied scaling decision —
    /// both manual [`PoolController::tick`]s and the background driver.
    ///
    /// This crate sits below the event bus in the dependency graph, so
    /// publication of `pool.scale` events is injected here by the layer that
    /// owns the pool (the Everest container) rather than hard-wired.
    #[must_use]
    pub fn on_scale(mut self, observer: impl Fn(&ScaleEvent) + Send + Sync + 'static) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// The pool label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The controller's knobs.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.config
    }

    /// `true` when `min_workers == max_workers`: every tick is a no-op.
    pub fn is_noop(&self) -> bool {
        self.config.min_workers == self.config.max_workers
    }

    /// Samples the target once and applies at most one scaling step.
    ///
    /// This is the whole control loop; calling it manually (as the load-test
    /// harness does) makes scaling decisions deterministic functions of the
    /// scripted load.
    pub fn tick(&mut self) -> Option<ScaleEvent> {
        if self.is_noop() {
            return None;
        }
        let status = self.target.pool_status();
        let saturation = status.saturation();
        let hot = status.queue_depth >= self.config.queue_high
            || saturation >= self.config.high_watermark;
        let idle = status.queue_depth == 0 && saturation <= self.config.low_watermark;
        if hot {
            self.hot_run += 1;
            self.idle_run = 0;
        } else if idle {
            self.idle_run += 1;
            self.hot_run = 0;
        } else {
            self.hot_run = 0;
            self.idle_run = 0;
        }

        if hot
            && self.hot_run >= self.config.sustain_ticks
            && status.workers < self.config.max_workers
        {
            let goal = (status.workers + self.config.step_up).min(self.config.max_workers);
            self.hot_run = 0;
            return Some(self.apply(ScaleDirection::Up, status, goal));
        }
        if idle
            && self.idle_run >= self.config.idle_ticks
            && status.workers > self.config.min_workers
        {
            // Never shrink below in-flight jobs (or below one worker): a
            // retiring worker finishes its job either way, but the controller
            // should not *ask* for less capacity than is already committed.
            let goal = status
                .workers
                .saturating_sub(self.config.step_down)
                .max(self.config.min_workers)
                .max(status.busy)
                .max(1);
            if goal < status.workers {
                self.idle_run = 0;
                return Some(self.apply(ScaleDirection::Down, status, goal));
            }
            // Clamping ate the whole step: stay put, keep the idle run so a
            // later tick (with fewer in-flight jobs) can retry immediately.
        }
        None
    }

    fn apply(&self, direction: ScaleDirection, status: PoolStatus, goal: usize) -> ScaleEvent {
        let to = self.target.scale_to(goal);
        match direction {
            ScaleDirection::Up => self.ups.inc(),
            ScaleDirection::Down => self.downs.inc(),
        }
        trace::info(
            "pool.scale",
            None,
            &[
                ("pool", &self.label),
                ("direction", direction.as_str()),
                ("from", &status.workers.to_string()),
                ("to", &to.to_string()),
                ("queue_depth", &status.queue_depth.to_string()),
                ("saturation", &format!("{:.3}", status.saturation())),
            ],
        );
        let event = ScaleEvent {
            direction,
            from: status.workers,
            to,
            status,
        };
        if let Some(observer) = &self.observer {
            observer(&event);
        }
        event
    }

    /// Moves the controller onto a background thread ticking every
    /// `config.tick`. The returned handle stops the loop on drop.
    pub fn spawn(mut self) -> AutoscaleHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let tick = self.config.tick;
        let thread = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                self.tick();
                std::thread::sleep(tick);
            }
        });
        AutoscaleHandle {
            stop,
            thread: Some(thread),
        }
    }
}

impl std::fmt::Debug for PoolController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolController")
            .field("label", &self.label)
            .field("config", &self.config)
            .finish()
    }
}

/// Handle on a background autoscaling loop; stops it on drop.
pub struct AutoscaleHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AutoscaleHandle {
    /// Stops the loop and waits for the thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Lets the loop run for the rest of the process lifetime (daemon
    /// semantics — the controller keeps its target alive).
    pub fn detach(mut self) {
        self.stop = Arc::new(AtomicBool::new(false));
        self.thread = None;
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AutoscaleHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for AutoscaleHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AutoscaleHandle")
            .field("running", &self.thread.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mutex;

    /// A target whose load is set by the test and whose size follows
    /// `scale_to` exactly.
    struct FakeTarget {
        state: Mutex<PoolStatus>,
    }

    impl FakeTarget {
        fn new(workers: usize) -> Arc<Self> {
            Arc::new(FakeTarget {
                state: Mutex::new(PoolStatus {
                    workers,
                    busy: 0,
                    queue_depth: 0,
                }),
            })
        }

        fn load(&self, busy: usize, queue_depth: usize) {
            let mut st = self.state.lock();
            st.busy = busy;
            st.queue_depth = queue_depth;
        }

        fn workers(&self) -> usize {
            self.state.lock().workers
        }
    }

    impl ScalableTarget for FakeTarget {
        fn pool_status(&self) -> PoolStatus {
            *self.state.lock()
        }

        fn scale_to(&self, workers: usize) -> usize {
            self.state.lock().workers = workers;
            workers
        }
    }

    fn config(min: usize, max: usize) -> AutoscaleConfig {
        AutoscaleConfig {
            min_workers: min,
            max_workers: max,
            sustain_ticks: 2,
            idle_ticks: 2,
            step_up: 2,
            step_down: 2,
            ..AutoscaleConfig::default()
        }
    }

    #[test]
    fn sustained_queue_scales_up_with_debounce() {
        let t = FakeTarget::new(2);
        let mut c = PoolController::new(
            "t-up",
            Arc::clone(&t) as Arc<dyn ScalableTarget>,
            config(2, 8),
        );
        t.load(2, 5); // saturated with a deep queue
        assert!(
            c.tick().is_none(),
            "first hot tick must not scale (debounce)"
        );
        let ev = c.tick().expect("second sustained hot tick scales up");
        assert_eq!(ev.direction, ScaleDirection::Up);
        assert_eq!((ev.from, ev.to), (2, 4));
        assert_eq!(t.workers(), 4);
        // The counter recorded the decision.
        assert_eq!(
            metrics::global().counter_value(
                "mc_pool_scale_events",
                &[("pool", "t-up"), ("direction", "up")]
            ),
            Some(1)
        );
    }

    #[test]
    fn saturation_watermark_alone_triggers_scale_up() {
        let t = FakeTarget::new(4);
        let mut c = PoolController::new(
            "t-sat",
            Arc::clone(&t) as Arc<dyn ScalableTarget>,
            config(1, 8),
        );
        t.load(4, 0); // all busy, nothing queued: saturation 1.0 >= 0.9
        c.tick();
        let ev = c.tick().expect("watermark scale-up");
        assert_eq!(ev.to, 6);
    }

    #[test]
    fn idle_ticks_scale_down_and_clamp_to_min() {
        let t = FakeTarget::new(6);
        let mut c = PoolController::new(
            "t-down",
            Arc::clone(&t) as Arc<dyn ScalableTarget>,
            config(2, 8),
        );
        t.load(0, 0);
        assert!(c.tick().is_none());
        let ev = c.tick().expect("second idle tick scales down");
        assert_eq!(ev.direction, ScaleDirection::Down);
        assert_eq!(ev.to, 4);
        c.tick();
        assert_eq!(c.tick().expect("keeps shrinking").to, 2);
        // At the floor: no further decisions.
        c.tick();
        assert!(c.tick().is_none(), "must not shrink below min_workers");
        assert_eq!(t.workers(), 2);
    }

    #[test]
    fn scale_down_never_drops_below_in_flight_jobs() {
        let t = FakeTarget::new(6);
        let mut c = PoolController::new(
            "t-clamp",
            Arc::clone(&t) as Arc<dyn ScalableTarget>,
            AutoscaleConfig {
                min_workers: 1,
                max_workers: 8,
                idle_ticks: 1,
                step_down: 5,
                ..AutoscaleConfig::default()
            },
        );
        // 3 of 6 busy, empty queue: saturation 0.5 <= low watermark, idle.
        t.load(3, 0);
        let ev = c.tick().expect("idle tick scales down");
        assert_eq!(ev.to, 3, "clamped to in-flight jobs, not min_workers");
        assert_eq!(t.workers(), 3);
        // Fully committed pool: clamping eats the whole step, no event.
        t.load(3, 0);
        assert!(c.tick().is_none());
        assert_eq!(t.workers(), 3);
    }

    #[test]
    fn fixed_size_pool_is_a_noop_controller() {
        let t = FakeTarget::new(3);
        let mut c = PoolController::new(
            "t-noop",
            Arc::clone(&t) as Arc<dyn ScalableTarget>,
            config(3, 3),
        );
        assert!(c.is_noop());
        t.load(3, 100); // drowning
        for _ in 0..10 {
            assert!(c.tick().is_none());
        }
        t.load(0, 0); // bone idle
        for _ in 0..10 {
            assert!(c.tick().is_none());
        }
        assert_eq!(t.workers(), 3, "no-op controller never touches the pool");
    }

    #[test]
    fn mixed_load_resets_both_runs() {
        let t = FakeTarget::new(4);
        let mut c = PoolController::new(
            "t-mix",
            Arc::clone(&t) as Arc<dyn ScalableTarget>,
            config(1, 8),
        );
        t.load(4, 4);
        c.tick(); // hot #1
        t.load(3, 0); // between watermarks: neither hot nor idle
        assert!(c.tick().is_none());
        t.load(4, 4);
        assert!(c.tick().is_none(), "hot run restarted from zero");
        assert!(c.tick().is_some());
    }

    #[test]
    fn zero_worker_pool_saturation_and_scale_up() {
        let empty_idle = PoolStatus {
            workers: 0,
            busy: 0,
            queue_depth: 0,
        };
        assert_eq!(empty_idle.saturation(), 0.0);
        let empty_drowning = PoolStatus {
            workers: 0,
            busy: 0,
            queue_depth: 3,
        };
        assert!(empty_drowning.saturation().is_infinite());

        let t = FakeTarget::new(0);
        let mut c = PoolController::new(
            "t-zero",
            Arc::clone(&t) as Arc<dyn ScalableTarget>,
            AutoscaleConfig {
                min_workers: 1,
                max_workers: 4,
                sustain_ticks: 1,
                ..AutoscaleConfig::default()
            },
        );
        t.load(0, 1); // one queued job, nobody to serve it
        let ev = c.tick().expect("zero-worker pool with work scales up");
        assert_eq!(ev.direction, ScaleDirection::Up);
        assert!(ev.to >= 1);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for (cfg, needle) in [
            (
                AutoscaleConfig {
                    min_workers: 0,
                    ..AutoscaleConfig::default()
                },
                "min_workers",
            ),
            (
                AutoscaleConfig {
                    min_workers: 4,
                    max_workers: 2,
                    ..AutoscaleConfig::default()
                },
                "max_workers",
            ),
            (
                AutoscaleConfig {
                    high_watermark: 1.5,
                    ..AutoscaleConfig::default()
                },
                "high_watermark",
            ),
            (
                AutoscaleConfig {
                    low_watermark: 0.95,
                    ..AutoscaleConfig::default()
                },
                "low_watermark",
            ),
            (
                AutoscaleConfig {
                    sustain_ticks: 0,
                    ..AutoscaleConfig::default()
                },
                "sustain_ticks",
            ),
            (
                AutoscaleConfig {
                    step_up: 0,
                    ..AutoscaleConfig::default()
                },
                "step_up",
            ),
        ] {
            let e = cfg.validate().unwrap_err();
            assert!(e.contains(needle), "{e} !~ {needle}");
        }
        assert!(AutoscaleConfig::default().validate().is_ok());
    }

    #[test]
    fn background_driver_scales_without_manual_ticks() {
        let t = FakeTarget::new(1);
        let c = PoolController::new(
            "t-bg",
            Arc::clone(&t) as Arc<dyn ScalableTarget>,
            AutoscaleConfig {
                min_workers: 1,
                max_workers: 4,
                sustain_ticks: 1,
                tick: Duration::from_millis(5),
                ..AutoscaleConfig::default()
            },
        );
        t.load(1, 10);
        let handle = c.spawn();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while t.workers() < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.stop();
        assert_eq!(t.workers(), 4, "background loop reached max_workers");
    }
}
