//! Process-wide metrics: atomic counters, gauges and fixed-bucket histograms.
//!
//! Instruments are keyed by `(name, sorted labels)`. Registration takes a
//! short write lock; after that every handle is an `Arc` straight to the
//! atomics, so the hot path (a request being served, a job changing state) is
//! a handful of `fetch_add`s — no locks, no allocation. Callers that care
//! about the last nanosecond should register once and keep the handle.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// Histogram `sum` is accumulated in integer microseconds so it can live in an
/// `AtomicU64`; values are converted back to seconds at read time.
const MICROS_PER_SEC: f64 = 1_000_000.0;

/// Default latency buckets in seconds: 100µs … 60s, roughly exponential.
/// Chosen to straddle both in-process substrate costs (router dispatch,
/// JSON parse) and full REST round-trips with multi-second compute.
pub const DEFAULT_LATENCY_BUCKETS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0, 30.0, 60.0,
];

/// Bucket bounds for message-size histograms (`mc_http_body_bytes`): powers
/// of four from 1 B to 64 MiB (4^0 … 4^13), so each bucket spans a 4× size
/// range — coarse enough to stay cheap, fine enough to separate control-plane
/// chatter from §4-style bulk data transfer.
pub const BODY_SIZE_BUCKETS: &[f64] = &[
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0,
    16777216.0, 67108864.0,
];

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (useful in tests).
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways (queue depth, busy
/// workers, per-service availability).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry (useful in tests).
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    /// Ascending finite upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket observation counts, `bounds.len() + 1` long (last is +Inf).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations (conventionally seconds).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn with_bounds(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }))
    }

    /// A histogram with [`DEFAULT_LATENCY_BUCKETS`], not attached to any
    /// registry (useful in tests).
    pub fn detached() -> Self {
        Histogram::with_bounds(DEFAULT_LATENCY_BUCKETS)
    }

    /// Record one observation. Negative values clamp to zero.
    pub fn observe(&self, value: f64) {
        let v = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(core.bounds.len());
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum_micros
            .fetch_add((v * MICROS_PER_SEC) as u64, Ordering::Relaxed);
    }

    /// Record a duration, in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in seconds.
    pub fn sum(&self) -> f64 {
        self.0.sum_micros.load(Ordering::Relaxed) as f64 / MICROS_PER_SEC
    }

    /// Consistent point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &self.0;
        HistogramSnapshot {
            bounds: core.bounds.clone(),
            buckets: core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: core.count.load(Ordering::Relaxed),
            sum: self.sum(),
        }
    }

    /// Estimated q-quantile (`0.0 ..= 1.0`); see [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// Point-in-time copy of a histogram's state.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Finite upper bounds (ascending); an implicit `+Inf` bucket follows.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `bounds.len() + 1` entries.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Estimate the q-quantile by linear interpolation inside the bucket that
    /// contains the target rank — the same estimator Prometheus's
    /// `histogram_quantile` uses. Observations landing in the `+Inf` bucket
    /// report the largest finite bound. Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if (seen as f64) >= rank {
                if i >= self.bounds.len() {
                    // +Inf bucket: the best point estimate is the last finite bound.
                    return self.bounds.last().copied().unwrap_or(0.0);
                }
                let hi = self.bounds[i];
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                if n == 0 {
                    return hi;
                }
                let into = rank - (seen - n) as f64;
                return lo + (hi - lo) * (into / n as f64);
            }
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

/// Fully resolved metric key: name plus sorted label pairs.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct MetricKey {
    pub(crate) name: String,
    pub(crate) labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Clone)]
pub(crate) enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named instruments. One process-wide instance is available
/// through [`global`]; independent registries can be created for tests.
pub struct MetricsRegistry {
    pub(crate) metrics: RwLock<HashMap<MetricKey, Metric>>,
    pub(crate) help: RwLock<HashMap<String, &'static str>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry {
            metrics: RwLock::new(HashMap::new()),
            help: RwLock::new(HashMap::new()),
        }
    }

    /// Attach a `# HELP` line to a metric name for exposition.
    pub fn describe(&self, name: &str, help: &'static str) {
        self.help
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), help);
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let key = MetricKey::new(name, labels);
        {
            let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
            if let Some(m) = metrics.get(&key) {
                return m.clone();
            }
        }
        let mut metrics = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        metrics.entry(key).or_insert_with(make).clone()
    }

    /// Fetch-or-create a counter. Panics if `name`+`labels` is already
    /// registered as a different instrument kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || Metric::Counter(Counter::detached())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Fetch-or-create a gauge. Panics on instrument-kind mismatch.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, || Metric::Gauge(Gauge::detached())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Fetch-or-create a histogram with [`DEFAULT_LATENCY_BUCKETS`].
    /// Panics on instrument-kind mismatch.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with(name, labels, DEFAULT_LATENCY_BUCKETS)
    }

    /// Fetch-or-create a histogram with explicit bucket bounds. Bounds apply
    /// only on first registration; later calls return the existing histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        match self.get_or_insert(name, labels, || {
            Metric::Histogram(Histogram::with_bounds(bounds))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Current value of a counter, if registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        match metrics.get(&MetricKey::new(name, labels)) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Current value of a gauge, if registered.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        match metrics.get(&MetricKey::new(name, labels)) {
            Some(Metric::Gauge(g)) => Some(g.get()),
            _ => None,
        }
    }

    /// Render the whole registry in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        crate::expose::render(self)
    }
}

/// The process-wide registry every MathCloud component reports into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c_total", &[("k", "v")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(reg.counter_value("c_total", &[("k", "v")]), Some(5));
        // Same name+labels returns the same underlying atomic.
        reg.counter("c_total", &[("k", "v")]).inc();
        assert_eq!(c.get(), 6);
        // Label order does not matter.
        let c2 = reg.counter("m", &[("a", "1"), ("b", "2")]);
        c2.inc();
        assert_eq!(reg.counter_value("m", &[("b", "2"), ("a", "1")]), Some(1));

        let g = reg.gauge("g", &[]);
        g.set(7);
        g.sub(9);
        assert_eq!(g.get(), -2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x", &[]);
        reg.gauge("x", &[]);
    }

    #[test]
    fn histogram_buckets_count_and_sum() {
        let h = Histogram::with_bounds(&[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![1, 2, 1, 1]);
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 56.05).abs() < 1e-6);
        // Negative and non-finite observations clamp into the first bucket.
        h.observe(-3.0);
        h.observe(f64::NAN);
        assert_eq!(h.snapshot().buckets[0], 3);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        let h = Histogram::with_bounds(&[1.0, 2.0, 4.0]);
        // 100 observations uniformly placed in the (1, 2] bucket.
        for _ in 0..100 {
            h.observe(1.5);
        }
        let p50 = h.quantile(0.5);
        assert!((p50 - 1.5).abs() < 1e-9, "p50 = {p50}");
        let p90 = h.quantile(0.9);
        assert!((p90 - 1.9).abs() < 1e-9, "p90 = {p90}");
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::with_bounds(&[1.0, 2.0]);
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        h.observe(100.0); // +Inf bucket
        assert_eq!(h.quantile(0.99), 2.0, "overflow reports last finite bound");

        let h = Histogram::with_bounds(&[1.0, 2.0, 4.0]);
        h.observe(0.5);
        h.observe(3.0);
        let p99 = h.quantile(0.99);
        assert!(p99 > 2.0 && p99 <= 4.0, "p99 = {p99}");
        let p01 = h.quantile(0.01);
        assert!(p01 <= 1.0, "p01 = {p01}");
    }

    #[test]
    fn default_buckets_are_ascending() {
        assert!(DEFAULT_LATENCY_BUCKETS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn body_size_buckets_are_powers_of_four() {
        assert_eq!(BODY_SIZE_BUCKETS.len(), 14, "4^0 through 4^13");
        for (i, &b) in BODY_SIZE_BUCKETS.iter().enumerate() {
            assert_eq!(b, 4f64.powi(i as i32), "bucket {i}");
        }
        assert_eq!(*BODY_SIZE_BUCKETS.last().unwrap(), 67_108_864.0); // 64 MiB
        assert!(BODY_SIZE_BUCKETS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn body_size_bucket_boundaries_are_inclusive_upper_bounds() {
        let h = Histogram::with_bounds(BODY_SIZE_BUCKETS);
        // Exactly on a bound lands in that bucket (v <= bound); one past it
        // spills into the next. A zero-byte body lands in the first bucket.
        h.observe(0.0); // bucket 0 (<= 1)
        h.observe(1.0); // bucket 0 (<= 1)
        h.observe(2.0); // bucket 1 (<= 4)
        h.observe(4.0); // bucket 1 (<= 4)
        h.observe(5.0); // bucket 2 (<= 16)
        h.observe(16_384.0); // bucket 7 (<= 16384)
        h.observe(16_385.0); // bucket 8 (<= 65536)
        h.observe(67_108_864.0); // bucket 13, last finite
        h.observe(67_108_865.0); // +Inf bucket
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[1], 2);
        assert_eq!(snap.buckets[2], 1);
        assert_eq!(snap.buckets[7], 1);
        assert_eq!(snap.buckets[8], 1);
        assert_eq!(snap.buckets[13], 1);
        assert_eq!(snap.buckets[14], 1, "oversize bodies overflow to +Inf");
        assert_eq!(snap.count, 9);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("spins_total", &[]);
                let h = reg.histogram("spin_seconds", &[]);
                for _ in 0..1000 {
                    c.inc();
                    h.observe(0.001);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter_value("spins_total", &[]), Some(8000));
        assert_eq!(reg.histogram("spin_seconds", &[]).count(), 8000);
    }
}
