//! Linear programs over exact rationals.

use std::fmt;

use mathcloud_exact::Rational;

/// The sense of one linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `≤`
    Le,
    /// `=`
    Eq,
    /// `≥`
    Ge,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Le => "<=",
            Relation::Eq => "=",
            Relation::Ge => ">=",
        })
    }
}

/// One linear constraint `Σ coeffs[j]·x[j]  rel  rhs` (sparse coefficients).
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; unmentioned variables are 0.
    pub coeffs: Vec<(usize, Rational)>,
    /// The relation.
    pub rel: Relation,
    /// The right-hand side.
    pub rhs: Rational,
}

/// A linear program: minimize `c·x` subject to constraints, `x ≥ 0`.
///
/// (Maximization is expressed by negating the objective; AMPL's `maximize`
/// does exactly that during instantiation.)
///
/// # Examples
///
/// ```
/// use mathcloud_exact::Rational;
/// use mathcloud_opt::{Lp, Relation};
///
/// // min -x - y  s.t.  x + y <= 4,  x <= 2
/// let one = || Rational::one();
/// let mut lp = Lp::new(2);
/// lp.set_objective(0, Rational::from(-1));
/// lp.set_objective(1, Rational::from(-1));
/// lp.constrain(vec![(0, one()), (1, one())], Relation::Le, Rational::from(4));
/// lp.constrain(vec![(0, one())], Relation::Le, Rational::from(2));
/// let sol = mathcloud_opt::solve(&lp).optimal().unwrap();
/// assert_eq!(sol.objective, Rational::from(-4));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Lp {
    objective: Vec<Rational>,
    constraints: Vec<Constraint>,
    names: Vec<String>,
}

impl Lp {
    /// Creates an LP with `vars` variables and a zero objective.
    pub fn new(vars: usize) -> Self {
        Lp {
            objective: vec![Rational::zero(); vars],
            constraints: Vec::new(),
            names: (0..vars).map(|j| format!("x{j}")).collect(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a variable, returning its index.
    pub fn add_var(&mut self, name: &str) -> usize {
        self.objective.push(Rational::zero());
        self.names.push(name.to_string());
        self.objective.len() - 1
    }

    /// Sets one objective coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective(&mut self, var: usize, coeff: impl Into<Rational>) {
        self.objective[var] = coeff.into();
    }

    /// The objective coefficients.
    pub fn objective(&self) -> &[Rational] {
        &self.objective
    }

    /// Adds a constraint.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable is out of range.
    pub fn constrain(
        &mut self,
        coeffs: Vec<(usize, impl Into<Rational>)>,
        rel: Relation,
        rhs: impl Into<Rational>,
    ) {
        let coeffs: Vec<(usize, Rational)> =
            coeffs.into_iter().map(|(j, c)| (j, c.into())).collect();
        for (j, _) in &coeffs {
            assert!(
                *j < self.num_vars(),
                "constraint references unknown variable {j}"
            );
        }
        self.constraints.push(Constraint {
            coeffs,
            rel,
            rhs: rhs.into(),
        });
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The variable names (debugging / solution reporting).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Renames a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_name(&mut self, var: usize, name: &str) {
        self.names[var] = name.to_string();
    }

    /// Evaluates the objective at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong length.
    pub fn objective_value(&self, x: &[Rational]) -> Rational {
        assert_eq!(x.len(), self.num_vars(), "point has wrong dimension");
        let mut total = Rational::zero();
        for (c, v) in self.objective.iter().zip(x) {
            if !c.is_zero() && !v.is_zero() {
                total += &(c * v);
            }
        }
        total
    }

    /// Checks feasibility of a point (exact, no tolerance needed).
    pub fn is_feasible(&self, x: &[Rational]) -> bool {
        if x.len() != self.num_vars() || x.iter().any(|v| v.signum() < 0) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let mut lhs = Rational::zero();
            for (j, coeff) in &c.coeffs {
                lhs += &(coeff * &x[*j]);
            }
            match c.rel {
                Relation::Le => lhs <= c.rhs,
                Relation::Eq => lhs == c.rhs,
                Relation::Ge => lhs >= c.rhs,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    #[test]
    fn construction_and_accessors() {
        let mut lp = Lp::new(2);
        let z = lp.add_var("extra");
        assert_eq!(z, 2);
        assert_eq!(lp.num_vars(), 3);
        lp.set_objective(0, r(5));
        lp.constrain(vec![(0, r(1)), (2, r(2))], Relation::Ge, r(3));
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.names()[2], "extra");
        lp.set_name(2, "y");
        assert_eq!(lp.names()[2], "y");
    }

    #[test]
    fn feasibility_is_exact() {
        let mut lp = Lp::new(2);
        lp.constrain(vec![(0, r(1)), (1, r(1))], Relation::Eq, r(1));
        let half = Rational::from_ratio(1, 2);
        assert!(lp.is_feasible(&[half.clone(), half.clone()]));
        assert!(!lp.is_feasible(&[half.clone(), Rational::from_ratio(499_999, 1_000_000)]));
        assert!(
            !lp.is_feasible(&[r(2), r(-1)]),
            "negative variables rejected"
        );
        assert!(!lp.is_feasible(&[r(1)]), "wrong dimension rejected");
    }

    #[test]
    fn objective_evaluation() {
        let mut lp = Lp::new(2);
        lp.set_objective(0, r(3));
        lp.set_objective(1, Rational::from_ratio(1, 2));
        assert_eq!(lp.objective_value(&[r(2), r(4)]), r(8));
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn constraint_with_bad_index_panics() {
        let mut lp = Lp::new(1);
        lp.constrain(vec![(5, r(1))], Relation::Le, r(1));
    }
}
