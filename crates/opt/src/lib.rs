//! Optimization modeling and solving for MathCloud.
//!
//! The paper's third application (§4, refs [12-13]) integrates "various
//! optimization solvers intended for basic classes of mathematical
//! programming problems and translators of AMPL optimization modeling
//! language" as computational web services, validated with a Dantzig–Wolfe
//! decomposition of the multi-commodity transportation problem running
//! subproblems on a pool of solver services in parallel.
//!
//! This crate provides all of that from scratch:
//!
//! * [`lp`] — linear programs over exact rationals,
//! * [`simplex`] — a two-phase primal simplex with Bland's rule (exact,
//!   never cycles, returns primal and dual solutions),
//! * [`ampl`] — an AMPL-subset modeling language (lexer → parser →
//!   instantiation into [`lp::Lp`]),
//! * [`transport`] — single- and multi-commodity transportation generators,
//! * [`dw`] — Dantzig–Wolfe column generation with pluggable (and parallel)
//!   subproblem solvers.

pub mod ampl;
pub mod dw;
pub mod lp;
pub mod simplex;
pub mod transport;

pub use ampl::{AmplError, Model};
pub use dw::{solve_dantzig_wolfe, DwOptions, DwStats, SubproblemSolver};
pub use lp::{Constraint, Lp, Relation};
pub use simplex::{solve, LpOutcome, Solution};
