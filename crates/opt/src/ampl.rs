//! An AMPL-subset optimization modeling language.
//!
//! The paper's optimization application integrates "translators of AMPL
//! optimization modeling language" as MathCloud services (§4, refs [12-13]).
//! This module is that translator: a lexer, a recursive-descent parser and
//! an instantiator that expands an indexed model plus data into an exact
//! [`Lp`].
//!
//! # Supported language
//!
//! ```text
//! set I;                                   # index sets
//! param c {I, J};  param b;                # indexed and scalar parameters
//! var x {I, J} >= 0;                       # non-negative variables
//! minimize total: sum {i in I, j in J} c[i,j] * x[i,j];
//! subject to supply {i in I}: sum {j in J} x[i,j] <= s[i];
//!
//! data;
//! set I := a b c;
//! param b := 5;
//! param s := a 10  b 20;
//! param c := a u 1   a v 2   b u 3   b v 4;
//! end;
//! ```
//!
//! `maximize` negates the objective during instantiation (the LP form is
//! minimization). Constraint and objective expressions must be linear in the
//! variables; the instantiator verifies this and reports violations.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use mathcloud_exact::Rational;

use crate::lp::{Lp, Relation};

/// An error from parsing or instantiating a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmplError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for AmplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ampl error at line {}: {}", self.line, self.message)
    }
}

impl Error for AmplError {}

fn err<T>(message: impl Into<String>, line: usize) -> Result<T, AmplError> {
    Err(AmplError {
        message: message.into(),
        line,
    })
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(Rational),
    Punct(&'static str),
    Eof,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> Result<Vec<Token>, AmplError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                let text = &src[start..i];
                let value: Rational = text.parse().map_err(|_| AmplError {
                    message: format!("bad number {text:?}"),
                    line,
                })?;
                out.push(Token {
                    tok: Tok::Number(value),
                    line,
                });
            }
            _ => {
                // Multi-character operators first.
                let rest = &src[i..];
                let two: Option<&'static str> = if rest.starts_with("<=") {
                    Some("<=")
                } else if rest.starts_with(">=") {
                    Some(">=")
                } else if rest.starts_with(":=") {
                    Some(":=")
                } else {
                    None
                };
                if let Some(p) = two {
                    out.push(Token {
                        tok: Tok::Punct(p),
                        line,
                    });
                    i += 2;
                } else {
                    let one: &'static str = match c {
                        '{' => "{",
                        '}' => "}",
                        '[' => "[",
                        ']' => "]",
                        '(' => "(",
                        ')' => ")",
                        ',' => ",",
                        ';' => ";",
                        ':' => ":",
                        '=' => "=",
                        '+' => "+",
                        '-' => "-",
                        '*' => "*",
                        '/' => "/",
                        '.' => ".",
                        other => return err(format!("unexpected character {other:?}"), line),
                    };
                    out.push(Token {
                        tok: Tok::Punct(one),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

// ------------------------------------------------------------------ AST --

#[derive(Debug, Clone)]
enum Expr {
    Number(Rational),
    /// `name` or `name[i, j]` — a parameter or variable reference; which one
    /// is decided at instantiation.
    Ref(String, Vec<String>, usize),
    Neg(Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>, usize),
    /// `sum {i in I, j in J} body`
    Sum(Vec<(String, String)>, Box<Expr>),
}

#[derive(Debug, Clone)]
struct ConstraintDecl {
    name: String,
    /// Indexing like `{i in I}` (empty for scalar constraints).
    indices: Vec<(String, String)>,
    lhs: Expr,
    rel: Relation,
    rhs: Expr,
    line: usize,
}

/// A parsed (and possibly data-bound) AMPL model.
#[derive(Debug, Clone, Default)]
pub struct Model {
    sets: Vec<String>,
    /// Parameter name → arity.
    params: Vec<(String, usize)>,
    /// Variable name → index-set names.
    vars: Vec<(String, Vec<String>)>,
    objective: Option<(bool /* maximize */, Expr)>,
    constraints: Vec<ConstraintDecl>,
    /// Data: set name → members.
    set_data: HashMap<String, Vec<String>>,
    /// Data: param name → (index tuple → value); scalars use the empty key.
    param_data: HashMap<String, HashMap<Vec<String>, Rational>>,
}

// --------------------------------------------------------------- parser --

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, p: &str) -> Result<(), AmplError> {
        if self.eat(p) {
            Ok(())
        } else {
            err(
                format!("expected {p:?}, found {:?}", self.peek()),
                self.line(),
            )
        }
    }

    fn ident(&mut self) -> Result<String, AmplError> {
        let line = self.line();
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => err(format!("expected identifier, found {other:?}"), line),
        }
    }

    /// `{i in I, j in J}`
    fn indexing(&mut self) -> Result<Vec<(String, String)>, AmplError> {
        let mut out = Vec::new();
        if !self.eat("{") {
            return Ok(out);
        }
        loop {
            let var = self.ident()?;
            let kw = self.ident()?;
            if kw != "in" {
                return err("expected 'in' inside indexing", self.line());
            }
            let set = self.ident()?;
            out.push((var, set));
            if self.eat("}") {
                break;
            }
            self.expect(",")?;
        }
        Ok(out)
    }

    /// Bare index-set list `{I, J}` in declarations.
    fn index_sets(&mut self) -> Result<Vec<String>, AmplError> {
        let mut out = Vec::new();
        if !self.eat("{") {
            return Ok(out);
        }
        loop {
            out.push(self.ident()?);
            if self.eat("}") {
                break;
            }
            self.expect(",")?;
        }
        Ok(out)
    }

    fn expr(&mut self) -> Result<Expr, AmplError> {
        let mut lhs = self.term()?;
        loop {
            if self.eat("+") {
                lhs = Expr::Add(Box::new(lhs), Box::new(self.term()?));
            } else if self.eat("-") {
                lhs = Expr::Sub(Box::new(lhs), Box::new(self.term()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn term(&mut self) -> Result<Expr, AmplError> {
        let mut lhs = self.factor()?;
        loop {
            if self.eat("*") {
                lhs = Expr::Mul(Box::new(lhs), Box::new(self.factor()?));
            } else if matches!(self.peek(), Tok::Punct("/")) {
                let line = self.line();
                self.bump();
                lhs = Expr::Div(Box::new(lhs), Box::new(self.factor()?), line);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, AmplError> {
        let line = self.line();
        if self.eat("-") {
            return Ok(Expr::Neg(Box::new(self.factor()?)));
        }
        if self.eat("(") {
            let e = self.expr()?;
            self.expect(")")?;
            return Ok(e);
        }
        match self.bump() {
            Tok::Number(n) => Ok(Expr::Number(n)),
            Tok::Ident(name) if name == "sum" => {
                let indices = self.indexing()?;
                if indices.is_empty() {
                    return err("sum requires an indexing expression", line);
                }
                let body = self.factor_chain()?;
                Ok(Expr::Sum(indices, Box::new(body)))
            }
            Tok::Ident(name) => {
                let mut indices = Vec::new();
                if self.eat("[") {
                    loop {
                        indices.push(self.ident()?);
                        if self.eat("]") {
                            break;
                        }
                        self.expect(",")?;
                    }
                }
                Ok(Expr::Ref(name, indices, line))
            }
            other => err(format!("expected expression, found {other:?}"), line),
        }
    }

    /// The body of a `sum`: binds multiplication but not +/- (AMPL's rule).
    fn factor_chain(&mut self) -> Result<Expr, AmplError> {
        let mut lhs = self.factor()?;
        loop {
            if self.eat("*") {
                lhs = Expr::Mul(Box::new(lhs), Box::new(self.factor()?));
            } else if matches!(self.peek(), Tok::Punct("/")) {
                let line = self.line();
                self.bump();
                lhs = Expr::Div(Box::new(lhs), Box::new(self.factor()?), line);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_model(&mut self) -> Result<Model, AmplError> {
        let mut model = Model::default();
        loop {
            let line = self.line();
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(kw) => match kw.as_str() {
                    "set" => {
                        self.bump();
                        let name = self.ident()?;
                        self.expect(";")?;
                        model.sets.push(name);
                    }
                    "param" => {
                        self.bump();
                        let name = self.ident()?;
                        let sets = self.index_sets()?;
                        self.expect(";")?;
                        model.params.push((name, sets.len()));
                    }
                    "var" => {
                        self.bump();
                        let name = self.ident()?;
                        let sets = self.index_sets()?;
                        // Only `>= 0` bounds are supported (LP standard form).
                        if self.eat(">=") {
                            let lo = self.bump();
                            if !matches!(&lo, Tok::Number(n) if n.is_zero()) {
                                return err("only 'var ... >= 0' bounds are supported", line);
                            }
                        }
                        self.expect(";")?;
                        model.vars.push((name, sets));
                    }
                    "minimize" | "maximize" => {
                        self.bump();
                        let _name = self.ident()?;
                        self.expect(":")?;
                        let e = self.expr()?;
                        self.expect(";")?;
                        if model.objective.is_some() {
                            return err("multiple objectives", line);
                        }
                        model.objective = Some((kw == "maximize", e));
                    }
                    "subject" => {
                        self.bump();
                        let to = self.ident()?;
                        if to != "to" {
                            return err("expected 'subject to'", line);
                        }
                        model.constraints.push(self.constraint_decl()?);
                    }
                    "s" => {
                        // `s.t.`
                        self.bump();
                        self.expect(".")?;
                        let t = self.ident()?;
                        if t != "t" {
                            return err("expected 's.t.'", line);
                        }
                        self.expect(".")?;
                        model.constraints.push(self.constraint_decl()?);
                    }
                    "data" => {
                        self.bump();
                        self.expect(";")?;
                        self.parse_data(&mut model)?;
                    }
                    other => return err(format!("unknown declaration {other:?}"), line),
                },
                other => return err(format!("unexpected token {other:?}"), line),
            }
        }
        Ok(model)
    }

    fn constraint_decl(&mut self) -> Result<ConstraintDecl, AmplError> {
        let line = self.line();
        let name = self.ident()?;
        let indices = self.indexing()?;
        self.expect(":")?;
        let lhs = self.expr()?;
        let rel = if self.eat("<=") {
            Relation::Le
        } else if self.eat(">=") {
            Relation::Ge
        } else if self.eat("=") {
            Relation::Eq
        } else {
            return err("expected <=, >= or = in constraint", self.line());
        };
        let rhs = self.expr()?;
        self.expect(";")?;
        Ok(ConstraintDecl {
            name,
            indices,
            lhs,
            rel,
            rhs,
            line,
        })
    }

    fn parse_data(&mut self, model: &mut Model) -> Result<(), AmplError> {
        loop {
            let line = self.line();
            match self.peek().clone() {
                Tok::Eof => return Ok(()),
                Tok::Ident(kw) if kw == "end" => {
                    self.bump();
                    let _ = self.eat(";");
                    return Ok(());
                }
                Tok::Ident(kw) if kw == "set" => {
                    self.bump();
                    let name = self.ident()?;
                    self.expect(":=")?;
                    let mut members = Vec::new();
                    while !self.eat(";") {
                        members.push(self.data_token()?);
                    }
                    model.set_data.insert(name, members);
                }
                Tok::Ident(kw) if kw == "param" => {
                    self.bump();
                    let name = self.ident()?;
                    let arity = model
                        .params
                        .iter()
                        .find(|(n, _)| *n == name)
                        .map(|(_, a)| *a)
                        .ok_or(AmplError {
                            message: format!("data for undeclared param {name:?}"),
                            line,
                        })?;
                    self.expect(":=")?;
                    let mut table = HashMap::new();
                    if arity == 0 {
                        let value = self.number()?;
                        table.insert(Vec::new(), value);
                        self.expect(";")?;
                    } else {
                        while !self.eat(";") {
                            let mut key = Vec::with_capacity(arity);
                            for _ in 0..arity {
                                key.push(self.data_token()?);
                            }
                            let value = self.number()?;
                            table.insert(key, value);
                        }
                    }
                    model.param_data.insert(name, table);
                }
                other => return err(format!("unexpected token {other:?} in data section"), line),
            }
        }
    }

    fn data_token(&mut self) -> Result<String, AmplError> {
        let line = self.line();
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            Tok::Number(n) => Ok(n.to_string()),
            other => err(format!("expected set member, found {other:?}"), line),
        }
    }

    fn number(&mut self) -> Result<Rational, AmplError> {
        let line = self.line();
        let negative = self.eat("-");
        match self.bump() {
            Tok::Number(n) => Ok(if negative { -n } else { n }),
            other => err(format!("expected number, found {other:?}"), line),
        }
    }
}

// --------------------------------------------------------- instantiation --

/// A linear expression over instantiated variables: `constant + Σ coeff·x`.
#[derive(Debug, Clone, Default)]
struct LinExpr {
    constant: Rational,
    coeffs: HashMap<usize, Rational>,
}

impl LinExpr {
    fn constant(c: Rational) -> Self {
        LinExpr {
            constant: c,
            coeffs: HashMap::new(),
        }
    }

    fn var(idx: usize) -> Self {
        LinExpr {
            constant: Rational::zero(),
            coeffs: [(idx, Rational::one())].into_iter().collect(),
        }
    }

    fn add(mut self, other: LinExpr) -> Self {
        self.constant += &other.constant;
        for (k, v) in other.coeffs {
            let entry = self.coeffs.entry(k).or_default();
            *entry = &*entry + &v;
        }
        self
    }

    fn negate(mut self) -> Self {
        self.constant = -self.constant;
        for v in self.coeffs.values_mut() {
            *v = -std::mem::take(v);
        }
        self
    }

    fn scale(mut self, s: &Rational) -> Self {
        self.constant *= s;
        for v in self.coeffs.values_mut() {
            *v *= s;
        }
        self
    }

    fn is_constant(&self) -> bool {
        self.coeffs.values().all(Rational::is_zero)
    }
}

struct Instantiator<'m> {
    model: &'m Model,
    /// Variable instance `(name, index-tuple)` → LP column.
    var_index: HashMap<(String, Vec<String>), usize>,
    lp: Lp,
}

impl Model {
    /// Parses model + data text.
    ///
    /// # Errors
    ///
    /// [`AmplError`] with the offending line.
    ///
    /// # Examples
    ///
    /// ```
    /// use mathcloud_opt::Model;
    ///
    /// let src = "
    ///     var x >= 0;
    ///     minimize obj: x;
    ///     subject to lower: x >= 3;
    /// ";
    /// let lp = Model::parse(src).unwrap().instantiate().unwrap();
    /// let sol = mathcloud_opt::solve(&lp).optimal().unwrap();
    /// assert_eq!(sol.values[0], mathcloud_exact::Rational::from(3));
    /// ```
    pub fn parse(src: &str) -> Result<Model, AmplError> {
        let tokens = lex(src)?;
        let mut parser = Parser { tokens, pos: 0 };
        parser.parse_model()
    }

    /// Members of a set (from the data section).
    fn members(&self, set: &str, line: usize) -> Result<&[String], AmplError> {
        if !self.sets.iter().any(|s| s == set) {
            return err(format!("undeclared set {set:?}"), line);
        }
        self.set_data.get(set).map(Vec::as_slice).ok_or(AmplError {
            message: format!("no data for set {set:?}"),
            line,
        })
    }

    /// Expands the model into an LP.
    ///
    /// # Errors
    ///
    /// [`AmplError`] on missing data, nonlinear expressions, or unknown
    /// names.
    pub fn instantiate(&self) -> Result<Lp, AmplError> {
        let mut inst = Instantiator {
            model: self,
            var_index: HashMap::new(),
            lp: Lp::new(0),
        };

        // Materialize every variable instance.
        for (name, sets) in &self.vars {
            let tuples = self.index_tuples(sets, 0)?;
            for tuple in tuples {
                let label = if tuple.is_empty() {
                    name.clone()
                } else {
                    format!("{name}[{}]", tuple.join(","))
                };
                let col = inst.lp.add_var(&label);
                inst.var_index.insert((name.clone(), tuple), col);
            }
        }

        // Objective.
        let (maximize, obj_expr) = self.objective.as_ref().ok_or(AmplError {
            message: "model has no objective".into(),
            line: 1,
        })?;
        let bindings = HashMap::new();
        let lin = inst.eval(obj_expr, &bindings)?;
        for (col, coeff) in &lin.coeffs {
            let c = if *maximize {
                -coeff.clone()
            } else {
                coeff.clone()
            };
            inst.lp.set_objective(*col, c);
        }

        // Constraints.
        for decl in &self.constraints {
            let tuples = self.binding_tuples(&decl.indices, decl.line)?;
            for binding in tuples {
                let lhs = inst.eval(&decl.lhs, &binding)?;
                let rhs = inst.eval(&decl.rhs, &binding)?;
                // Normal form: (lhs - rhs) rel 0  →  vars rel constant.
                let diff = lhs.add(rhs.negate());
                let rhs_const = -diff.constant.clone();
                let coeffs: Vec<(usize, Rational)> = diff
                    .coeffs
                    .into_iter()
                    .filter(|(_, c)| !c.is_zero())
                    .collect();
                if coeffs.is_empty() {
                    // A ground fact: verify it instead of emitting a row.
                    let holds = match decl.rel {
                        Relation::Le => Rational::zero() <= rhs_const,
                        Relation::Eq => rhs_const.is_zero(),
                        Relation::Ge => Rational::zero() >= rhs_const,
                    };
                    if !holds {
                        return err(
                            format!("constraint {:?} is trivially violated", decl.name),
                            decl.line,
                        );
                    }
                    continue;
                }
                inst.lp.constrain(coeffs, decl.rel, rhs_const);
            }
        }
        Ok(inst.lp)
    }

    /// All index tuples of a list of sets (cartesian product).
    fn index_tuples(&self, sets: &[String], line: usize) -> Result<Vec<Vec<String>>, AmplError> {
        let mut tuples: Vec<Vec<String>> = vec![Vec::new()];
        for set in sets {
            let members = self.members(set, line)?;
            let mut next = Vec::with_capacity(tuples.len() * members.len());
            for t in &tuples {
                for m in members {
                    let mut t2 = t.clone();
                    t2.push(m.clone());
                    next.push(t2);
                }
            }
            tuples = next;
        }
        Ok(tuples)
    }

    /// All bindings of an indexing expression `{i in I, j in J}`.
    fn binding_tuples(
        &self,
        indices: &[(String, String)],
        line: usize,
    ) -> Result<Vec<HashMap<String, String>>, AmplError> {
        let mut bindings: Vec<HashMap<String, String>> = vec![HashMap::new()];
        for (var, set) in indices {
            let members = self.members(set, line)?;
            let mut next = Vec::with_capacity(bindings.len() * members.len());
            for b in &bindings {
                for m in members {
                    let mut b2 = b.clone();
                    b2.insert(var.clone(), m.clone());
                    next.push(b2);
                }
            }
            bindings = next;
        }
        Ok(bindings)
    }
}

impl Instantiator<'_> {
    fn eval(&self, e: &Expr, bindings: &HashMap<String, String>) -> Result<LinExpr, AmplError> {
        match e {
            Expr::Number(n) => Ok(LinExpr::constant(n.clone())),
            Expr::Neg(inner) => Ok(self.eval(inner, bindings)?.negate()),
            Expr::Add(a, b) => Ok(self.eval(a, bindings)?.add(self.eval(b, bindings)?)),
            Expr::Sub(a, b) => Ok(self
                .eval(a, bindings)?
                .add(self.eval(b, bindings)?.negate())),
            Expr::Mul(a, b) => {
                let la = self.eval(a, bindings)?;
                let lb = self.eval(b, bindings)?;
                if la.is_constant() {
                    Ok(lb.scale(&la.constant))
                } else if lb.is_constant() {
                    Ok(la.scale(&lb.constant))
                } else {
                    err("nonlinear expression: product of two variables", 0)
                }
            }
            Expr::Div(a, b, line) => {
                let la = self.eval(a, bindings)?;
                let lb = self.eval(b, bindings)?;
                if !lb.is_constant() {
                    return err("nonlinear expression: division by a variable", *line);
                }
                if lb.constant.is_zero() {
                    return err("division by zero", *line);
                }
                Ok(la.scale(&lb.constant.recip()))
            }
            Expr::Sum(indices, body) => {
                let tuples = self.model.binding_tuples(indices, 0)?;
                let mut total = LinExpr::default();
                for tuple in tuples {
                    let mut merged = bindings.clone();
                    merged.extend(tuple);
                    total = total.add(self.eval(body, &merged)?);
                }
                Ok(total)
            }
            Expr::Ref(name, raw_indices, line) => {
                // Resolve index identifiers through the current bindings;
                // unbound identifiers are literal member names.
                let indices: Vec<String> = raw_indices
                    .iter()
                    .map(|ix| bindings.get(ix).cloned().unwrap_or_else(|| ix.clone()))
                    .collect();
                // A variable?
                if let Some(col) = self.var_index.get(&(name.clone(), indices.clone())) {
                    return Ok(LinExpr::var(*col));
                }
                // A bound index identifier used as a value? Not numeric — only
                // params produce numbers.
                if let Some(table) = self.model.param_data.get(name) {
                    return table
                        .get(&indices)
                        .cloned()
                        .map(LinExpr::constant)
                        .ok_or(AmplError {
                            message: format!("no data for {name}[{}]", indices.join(",")),
                            line: *line,
                        });
                }
                if self.model.params.iter().any(|(n, _)| n == name) {
                    return err(format!("no data section values for param {name:?}"), *line);
                }
                err(format!("unknown name {name:?}"), *line)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::solve;

    const TRANSPORT_MODEL: &str = "
        set I; set J;
        param supply {I};
        param demand {J};
        param cost {I, J};
        var x {I, J} >= 0;
        minimize total: sum {i in I, j in J} cost[i,j] * x[i,j];
        subject to sup {i in I}: sum {j in J} x[i,j] <= supply[i];
        subject to dem {j in J}: sum {i in I} x[i,j] >= demand[j];
        data;
        set I := s1 s2;
        set J := t1 t2;
        param supply := s1 5 s2 5;
        param demand := t1 5 t2 5;
        param cost := s1 t1 1   s1 t2 10   s2 t1 10   s2 t2 1;
        end;
    ";

    #[test]
    fn transportation_model_solves_to_known_optimum() {
        let model = Model::parse(TRANSPORT_MODEL).unwrap();
        let lp = model.instantiate().unwrap();
        assert_eq!(lp.num_vars(), 4);
        assert_eq!(lp.num_constraints(), 4);
        let sol = solve(&lp).optimal().unwrap();
        assert_eq!(sol.objective, Rational::from(10));
    }

    #[test]
    fn maximize_negates_the_objective() {
        let src = "
            var x >= 0; var y >= 0;
            maximize profit: 3 * x + 5 * y;
            subject to c1: x <= 4;
            subject to c2: 2 * y <= 12;
            subject to c3: 3 * x + 2 * y <= 18;
        ";
        let lp = Model::parse(src).unwrap().instantiate().unwrap();
        let sol = solve(&lp).optimal().unwrap();
        assert_eq!(sol.objective, Rational::from(-36), "minimized negation");
        assert_eq!(sol.values, vec![Rational::from(2), Rational::from(6)]);
    }

    #[test]
    fn scalar_params_and_st_syntax() {
        let src = "
            param limit;
            var x >= 0;
            minimize obj: 0 - x;
            s.t. cap: x <= limit;
            data;
            param limit := 7;
        ";
        let lp = Model::parse(src).unwrap().instantiate().unwrap();
        let sol = solve(&lp).optimal().unwrap();
        assert_eq!(sol.values[0], Rational::from(7));
    }

    #[test]
    fn arithmetic_on_params_folds_exactly() {
        let src = "
            var x >= 0;
            minimize obj: x;
            subject to c: 2 * x / 4 >= 1 - (0 - 1);
        ";
        // x/2 >= 2 → x >= 4.
        let lp = Model::parse(src).unwrap().instantiate().unwrap();
        let sol = solve(&lp).optimal().unwrap();
        assert_eq!(sol.values[0], Rational::from(4));
    }

    #[test]
    fn nonlinear_expressions_are_rejected() {
        let src = "
            var x >= 0; var y >= 0;
            minimize obj: x * y;
            subject to c: x + y >= 1;
        ";
        let e = Model::parse(src).unwrap().instantiate().unwrap_err();
        assert!(e.message.contains("nonlinear"), "{e}");
        let src = "
            var x >= 0;
            minimize obj: 1 / x;
            subject to c: x >= 1;
        ";
        let e = Model::parse(src).unwrap().instantiate().unwrap_err();
        assert!(e.message.contains("nonlinear"), "{e}");
    }

    #[test]
    fn missing_data_is_reported() {
        let src = "
            set I;
            param p {I};
            var x {I} >= 0;
            minimize obj: sum {i in I} p[i] * x[i];
            subject to c {i in I}: x[i] >= 1;
            data;
            set I := a b;
            param p := a 1;
        ";
        let e = Model::parse(src).unwrap().instantiate().unwrap_err();
        assert!(e.message.contains("no data for p[b]"), "{e}");
    }

    #[test]
    fn undeclared_names_are_reported() {
        let src = "var x >= 0; minimize o: x + ghost; subject to c: x >= 0;";
        let e = Model::parse(src).unwrap().instantiate().unwrap_err();
        assert!(e.message.contains("ghost"), "{e}");
        let src = "set I; var x {I} >= 0; minimize o: sum {i in J} x[i]; s.t. c {i in I}: x[i] >= 0; data; set I := a;";
        let e = Model::parse(src).unwrap().instantiate().unwrap_err();
        assert!(e.message.contains("undeclared set"), "{e}");
    }

    #[test]
    fn syntax_errors_carry_lines() {
        let e = Model::parse("var x >= 1;").unwrap_err();
        assert!(e.message.contains(">= 0"), "{e}");
        let e = Model::parse("minimize : x;").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(Model::parse("wibble;").is_err());
        assert!(Model::parse("var x >= 0; minimize o: x ~ 1;").is_err());
    }

    #[test]
    fn ground_constraints_are_checked() {
        let src = "
            var x >= 0;
            minimize o: x;
            subject to fact: 2 <= 1;
        ";
        let e = Model::parse(src).unwrap().instantiate().unwrap_err();
        assert!(e.message.contains("trivially violated"), "{e}");
        let ok = "
            var x >= 0;
            minimize o: x;
            subject to fact: 1 <= 2;
        ";
        assert!(Model::parse(ok).unwrap().instantiate().is_ok());
    }

    #[test]
    fn literal_member_indexing() {
        // Reference a specific member directly: x[a].
        let src = "
            set I;
            var x {I} >= 0;
            minimize o: sum {i in I} x[i];
            subject to pin: x[a] >= 5;
            subject to all {i in I}: x[i] >= 1;
            data;
            set I := a b;
        ";
        let lp = Model::parse(src).unwrap().instantiate().unwrap();
        let sol = solve(&lp).optimal().unwrap();
        assert_eq!(sol.objective, Rational::from(6));
    }

    #[test]
    fn matches_generated_transportation_instance() {
        // Cross-check AMPL instantiation against the native generator.
        let p = crate::transport::TransportationProblem::random(2, 2, 99);
        let src = format!(
            "
            set I; set J;
            param supply {{I}}; param demand {{J}}; param cost {{I, J}};
            var x {{I, J}} >= 0;
            minimize total: sum {{i in I, j in J}} cost[i,j] * x[i,j];
            subject to sup {{i in I}}: sum {{j in J}} x[i,j] <= supply[i];
            subject to dem {{j in J}}: sum {{i in I}} x[i,j] >= demand[j];
            data;
            set I := s0 s1;
            set J := t0 t1;
            param supply := s0 {} s1 {};
            param demand := t0 {} t1 {};
            param cost := s0 t0 {} s0 t1 {} s1 t0 {} s1 t1 {};
            end;
        ",
            p.supplies[0],
            p.supplies[1],
            p.demands[0],
            p.demands[1],
            p.costs[0][0],
            p.costs[0][1],
            p.costs[1][0],
            p.costs[1][1],
        );
        let lp = Model::parse(&src).unwrap().instantiate().unwrap();
        let from_ampl = solve(&lp).optimal().unwrap();
        let direct = solve(&p.to_lp()).optimal().unwrap();
        assert_eq!(from_ampl.objective, direct.objective);
    }
}
