//! A two-phase primal simplex over exact rationals.
//!
//! Exact arithmetic removes every numerical-tolerance concern, and Bland's
//! rule guarantees termination, so this solver is *decidable*: it always
//! returns `Optimal`, `Infeasible` or `Unbounded` — the right foundation for
//! the error-free optimization services of the paper's third application.

use mathcloud_exact::Rational;

use crate::lp::{Lp, Relation};

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal values of the original variables.
    pub values: Vec<Rational>,
    /// The optimal objective value (of the minimization).
    pub objective: Rational,
    /// Dual values `y = c_B·B⁻¹`, one per constraint in input order, such
    /// that every column's reduced cost is `c_j − y·A_j`. Column generation
    /// (Dantzig–Wolfe) prices candidate columns with exactly this vector.
    pub duals: Vec<Rational>,
}

/// The outcome of solving an LP.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimum was found.
    Optimal(Solution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

impl LpOutcome {
    /// Extracts the solution if optimal.
    pub fn optimal(self) -> Option<Solution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

struct Tableau {
    /// Constraint coefficients, `rows × cols`.
    t: Vec<Vec<Rational>>,
    /// Right-hand sides (always ≥ 0).
    rhs: Vec<Rational>,
    /// Basic variable (column) of each row.
    basis: Vec<usize>,
    /// Per-column cost for the current phase.
    cost: Vec<Rational>,
    /// Columns barred from entering the basis (artificials in phase 2).
    blocked: Vec<bool>,
    /// For each row, the column that initially held `+1` in that row only
    /// (slack or artificial) — reads off `B⁻¹` for dual extraction.
    identity_col: Vec<usize>,
    /// Original constraint index of each row.
    row_origin: Vec<usize>,
    /// Whether the original constraint was sign-flipped during
    /// normalization.
    flipped: Vec<bool>,
}

impl Tableau {
    /// Reduced cost of column `j`: `c_j − c_B·T[:,j]` (the tableau column is
    /// already `B⁻¹·A_j`, so it is priced with the *basic costs*, not with
    /// the dual prices).
    fn reduced_cost(&self, j: usize, basic_costs: &[Rational]) -> Rational {
        let mut d = self.cost[j].clone();
        for (r, cb) in basic_costs.iter().enumerate() {
            if !cb.is_zero() && !self.t[r][j].is_zero() {
                d -= &(cb * &self.t[r][j]);
            }
        }
        d
    }

    /// Current prices `y` with `y_i` read through the identity columns.
    fn prices(&self) -> Vec<Rational> {
        // y = c_B·B⁻¹; row i of B⁻¹ is not directly stored, but column k of
        // B⁻¹ is the tableau column of the k-th initial identity column, so
        // y_k = Σ_r c_B[r]·T[r][identity_col[k]].
        (0..self.t.len())
            .map(|k| {
                let col = self.identity_col[k];
                let mut yk = Rational::zero();
                for (r, row) in self.t.iter().enumerate() {
                    let cb = &self.cost[self.basis[r]];
                    if !cb.is_zero() && !row[col].is_zero() {
                        yk += &(cb * &row[col]);
                    }
                }
                yk
            })
            .collect()
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.t[row][col].clone();
        let inv = pivot.recip();
        for v in &mut self.t[row] {
            *v *= &inv;
        }
        self.rhs[row] *= &inv;
        let pivot_row = self.t[row].clone();
        let pivot_rhs = self.rhs[row].clone();
        for r in 0..self.t.len() {
            if r == row || self.t[r][col].is_zero() {
                continue;
            }
            let factor = self.t[r][col].clone();
            for (j, pv) in pivot_row.iter().enumerate() {
                if pv.is_zero() {
                    continue;
                }
                let delta = &factor * pv;
                let v = &self.t[r][j] - &delta;
                self.t[r][j] = v;
            }
            let delta = &factor * &pivot_rhs;
            let v = &self.rhs[r] - &delta;
            self.rhs[r] = v;
        }
        self.basis[row] = col;
    }

    /// One phase of simplex with Bland's rule. Returns `false` when the
    /// problem is unbounded in this phase.
    fn optimize(&mut self) -> bool {
        loop {
            let basic_costs: Vec<Rational> =
                self.basis.iter().map(|&b| self.cost[b].clone()).collect();
            // Bland: entering column = lowest index with negative reduced
            // cost.
            let mut entering = None;
            for j in 0..self.cost.len() {
                if self.blocked[j] || self.basis.contains(&j) {
                    continue;
                }
                if self.reduced_cost(j, &basic_costs).signum() < 0 {
                    entering = Some(j);
                    break;
                }
            }
            let Some(e) = entering else { return true };
            // Ratio test; Bland tie-break on the leaving basic variable.
            let mut leave: Option<(usize, Rational)> = None;
            for r in 0..self.t.len() {
                if self.t[r][e].signum() <= 0 {
                    continue;
                }
                let ratio = &self.rhs[r] / &self.t[r][e];
                let better = match &leave {
                    None => true,
                    Some((lr, lratio)) => {
                        ratio < *lratio || (ratio == *lratio && self.basis[r] < self.basis[*lr])
                    }
                };
                if better {
                    leave = Some((r, ratio));
                }
            }
            let Some((r, _)) = leave else { return false };
            self.pivot(r, e);
        }
    }
}

/// Solves an LP exactly.
///
/// # Examples
///
/// ```
/// use mathcloud_exact::Rational;
/// use mathcloud_opt::{solve, Lp, LpOutcome, Relation};
///
/// // min x  s.t.  x >= 3
/// let mut lp = Lp::new(1);
/// lp.set_objective(0, Rational::from(1));
/// lp.constrain(vec![(0, Rational::from(1))], Relation::Ge, Rational::from(3));
/// let sol = solve(&lp).optimal().unwrap();
/// assert_eq!(sol.values[0], Rational::from(3));
/// ```
pub fn solve(lp: &Lp) -> LpOutcome {
    let n = lp.num_vars();
    let m = lp.num_constraints();
    if m == 0 {
        // Feasible iff every objective coefficient ≥ 0 at x = 0 (otherwise
        // unbounded since x is only bounded below).
        if lp.objective().iter().any(|c| c.signum() < 0) {
            return LpOutcome::Unbounded;
        }
        return LpOutcome::Optimal(Solution {
            values: vec![Rational::zero(); n],
            objective: Rational::zero(),
            duals: Vec::new(),
        });
    }

    // Normalize rows to rhs >= 0 and build dense rows.
    let mut rows: Vec<(Vec<Rational>, Relation, Rational, bool)> = Vec::with_capacity(m);
    for c in lp.constraints() {
        let mut dense = vec![Rational::zero(); n];
        for (j, coeff) in &c.coeffs {
            dense[*j] = &dense[*j] + coeff;
        }
        if c.rhs.signum() < 0 {
            for v in &mut dense {
                *v = -std::mem::take(v);
            }
            let rel = match c.rel {
                Relation::Le => Relation::Ge,
                Relation::Eq => Relation::Eq,
                Relation::Ge => Relation::Le,
            };
            rows.push((dense, rel, -c.rhs.clone(), true));
        } else {
            rows.push((dense, c.rel, c.rhs.clone(), false));
        }
    }

    // Column layout: originals | slacks/surplus | artificials.
    let mut extra_cols = 0usize;
    for (_, rel, _, _) in &rows {
        extra_cols += match rel {
            Relation::Le => 1,
            Relation::Eq => 1,
            Relation::Ge => 2,
        };
    }
    let total = n + extra_cols;
    let mut t = vec![vec![Rational::zero(); total]; m];
    let mut rhs = Vec::with_capacity(m);
    let mut basis = vec![0usize; m];
    let mut identity_col = vec![0usize; m];
    let mut is_artificial = vec![false; total];
    let mut flipped = Vec::with_capacity(m);
    let mut next = n;
    for (i, (dense, rel, b, flip)) in rows.into_iter().enumerate() {
        t[i][..n].clone_from_slice(&dense);
        rhs.push(b);
        flipped.push(flip);
        match rel {
            Relation::Le => {
                t[i][next] = Rational::one(); // slack
                basis[i] = next;
                identity_col[i] = next;
                next += 1;
            }
            Relation::Ge => {
                t[i][next] = Rational::from(-1); // surplus
                next += 1;
                t[i][next] = Rational::one(); // artificial
                is_artificial[next] = true;
                basis[i] = next;
                identity_col[i] = next;
                next += 1;
            }
            Relation::Eq => {
                t[i][next] = Rational::one(); // artificial
                is_artificial[next] = true;
                basis[i] = next;
                identity_col[i] = next;
                next += 1;
            }
        }
    }
    debug_assert_eq!(next, total);

    // Phase 1: minimize the sum of artificials.
    let mut tab = Tableau {
        t,
        rhs,
        basis,
        cost: (0..total)
            .map(|j| {
                if is_artificial[j] {
                    Rational::one()
                } else {
                    Rational::zero()
                }
            })
            .collect(),
        blocked: vec![false; total],
        identity_col,
        row_origin: (0..m).collect(),
        flipped,
    };
    if !tab.optimize() {
        // Phase 1 objective is bounded below by 0, so this cannot happen;
        // defensive fall-through.
        return LpOutcome::Infeasible;
    }
    // Feasible iff all artificials are zero.
    let phase1_obj: Rational = (0..m)
        .map(|r| {
            if is_artificial[tab.basis[r]] {
                tab.rhs[r].clone()
            } else {
                Rational::zero()
            }
        })
        .sum();
    if !phase1_obj.is_zero() {
        return LpOutcome::Infeasible;
    }
    // Drive basic artificials out where possible (they sit at value 0).
    for r in 0..m {
        if !is_artificial[tab.basis[r]] {
            continue;
        }
        if let Some(col) = (0..total).find(|&j| !is_artificial[j] && !tab.t[r][j].is_zero()) {
            tab.pivot(r, col);
        }
        // Otherwise the row is redundant; the artificial stays basic at 0
        // and its column is blocked below, so it can never grow.
    }

    // Phase 2: original costs, artificials barred from entering.
    for (j, &artificial) in is_artificial.iter().enumerate() {
        tab.cost[j] = if j < n {
            lp.objective()[j].clone()
        } else {
            Rational::zero()
        };
        tab.blocked[j] = artificial;
    }
    if !tab.optimize() {
        return LpOutcome::Unbounded;
    }

    // Extract the primal point.
    let mut values = vec![Rational::zero(); n];
    for r in 0..m {
        if tab.basis[r] < n {
            values[tab.basis[r]] = tab.rhs[r].clone();
        }
    }
    let objective = lp.objective_value(&values);

    // Extract duals, unflipping normalized rows.
    let y = tab.prices();
    let mut duals = vec![Rational::zero(); m];
    for (k, yk) in y.into_iter().enumerate() {
        let orig = tab.row_origin[k];
        duals[orig] = if tab.flipped[k] { -yk } else { yk };
    }

    LpOutcome::Optimal(Solution {
        values,
        objective,
        duals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    fn rr(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Hillier &
        // Lieberman) — optimum (2, 6) with value 36.
        let mut lp = Lp::new(2);
        lp.set_objective(0, r(-3));
        lp.set_objective(1, r(-5));
        lp.constrain(vec![(0, r(1))], Relation::Le, r(4));
        lp.constrain(vec![(1, r(2))], Relation::Le, r(12));
        lp.constrain(vec![(0, r(3)), (1, r(2))], Relation::Le, r(18));
        let sol = solve(&lp).optimal().unwrap();
        assert_eq!(sol.values, vec![r(2), r(6)]);
        assert_eq!(sol.objective, r(-36));
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min 2x + 3y s.t. x + y = 10, x >= 3 — optimum (10-? ) with y free..
        // x=10,y=0 gives 20; but x>=3 only. Optimum x=10, y=0 → 20.
        let mut lp = Lp::new(2);
        lp.set_objective(0, r(2));
        lp.set_objective(1, r(3));
        lp.constrain(vec![(0, r(1)), (1, r(1))], Relation::Eq, r(10));
        lp.constrain(vec![(0, r(1))], Relation::Ge, r(3));
        let sol = solve(&lp).optimal().unwrap();
        assert_eq!(sol.values, vec![r(10), r(0)]);
        assert_eq!(sol.objective, r(20));
    }

    #[test]
    fn fractional_optimum_is_exact() {
        // min x + y s.t. 3x + y >= 1, x + 3y >= 1 — optimum x=y=1/4.
        let mut lp = Lp::new(2);
        lp.set_objective(0, r(1));
        lp.set_objective(1, r(1));
        lp.constrain(vec![(0, r(3)), (1, r(1))], Relation::Ge, r(1));
        lp.constrain(vec![(0, r(1)), (1, r(3))], Relation::Ge, r(1));
        let sol = solve(&lp).optimal().unwrap();
        assert_eq!(sol.values, vec![rr(1, 4), rr(1, 4)]);
        assert_eq!(sol.objective, rr(1, 2));
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = Lp::new(1);
        lp.constrain(vec![(0, r(1))], Relation::Le, r(1));
        lp.constrain(vec![(0, r(1))], Relation::Ge, r(2));
        assert_eq!(solve(&lp), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = Lp::new(1);
        lp.set_objective(0, r(-1));
        lp.constrain(vec![(0, r(-1))], Relation::Le, r(0)); // -x <= 0, i.e. x >= 0
        assert_eq!(solve(&lp), LpOutcome::Unbounded);
    }

    #[test]
    fn no_constraints_cases() {
        let mut lp = Lp::new(2);
        lp.set_objective(0, r(1));
        let sol = solve(&lp).optimal().unwrap();
        assert_eq!(sol.objective, r(0));
        let mut lp = Lp::new(1);
        lp.set_objective(0, r(-1));
        assert_eq!(solve(&lp), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x - y <= -2 means y >= x + 2; min y is 2 at x=0.
        let mut lp = Lp::new(2);
        lp.set_objective(1, r(1));
        lp.constrain(vec![(0, r(1)), (1, r(-1))], Relation::Le, r(-2));
        let sol = solve(&lp).optimal().unwrap();
        assert_eq!(sol.values[1], r(2));
    }

    #[test]
    fn degenerate_problems_terminate() {
        // A classic cycling example (Beale) — Bland's rule must terminate.
        let mut lp = Lp::new(4);
        lp.set_objective(0, rr(-3, 4));
        lp.set_objective(1, r(150));
        lp.set_objective(2, rr(-1, 50));
        lp.set_objective(3, r(6));
        lp.constrain(
            vec![(0, rr(1, 4)), (1, r(-60)), (2, rr(-1, 25)), (3, r(9))],
            Relation::Le,
            r(0),
        );
        lp.constrain(
            vec![(0, rr(1, 2)), (1, r(-90)), (2, rr(-1, 50)), (3, r(3))],
            Relation::Le,
            r(0),
        );
        lp.constrain(vec![(2, r(1))], Relation::Le, r(1));
        let sol = solve(&lp).optimal().unwrap();
        assert_eq!(sol.objective, rr(-1, 20));
    }

    #[test]
    fn duals_price_columns_correctly() {
        // min c·x with all-<= rows: at optimum, every column's reduced cost
        // c_j - y·A_j must be >= 0, and basic columns price to exactly 0.
        let mut lp = Lp::new(2);
        lp.set_objective(0, r(-3));
        lp.set_objective(1, r(-5));
        lp.constrain(vec![(0, r(1))], Relation::Le, r(4));
        lp.constrain(vec![(1, r(2))], Relation::Le, r(12));
        lp.constrain(vec![(0, r(3)), (1, r(2))], Relation::Le, r(18));
        let sol = solve(&lp).optimal().unwrap();
        let y = &sol.duals;
        // Column 0: c0 - (y0*1 + y2*3) >= 0; column 1: c1 - (y1*2 + y2*2) >= 0.
        let rc0 = &r(-3) - &(&y[0] + &(&y[2] * &r(3)));
        let rc1 = &r(-5) - &(&(&y[1] * &r(2)) + &(&y[2] * &r(2)));
        assert!(rc0.signum() >= 0, "rc0={rc0}");
        assert!(rc1.signum() >= 0, "rc1={rc1}");
        // Strong duality: y·b == objective.
        let yb = &(&y[0] * &r(4)) + &(&(&y[1] * &r(12)) + &(&y[2] * &r(18)));
        assert_eq!(yb, sol.objective);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // x + y = 2 written twice.
        let mut lp = Lp::new(2);
        lp.set_objective(0, r(1));
        lp.constrain(vec![(0, r(1)), (1, r(1))], Relation::Eq, r(2));
        lp.constrain(vec![(0, r(1)), (1, r(1))], Relation::Eq, r(2));
        let sol = solve(&lp).optimal().unwrap();
        assert_eq!(sol.objective, r(0));
        assert_eq!(sol.values[1], r(2));
    }
}
