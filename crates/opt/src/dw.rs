//! Dantzig–Wolfe decomposition for multi-commodity transportation.
//!
//! The paper's optimization-services application dispatches "all problems
//! (and/or intermediate subproblems)" of an AMPL-scripted algorithm "to a
//! pool of solver services", validating the approach "by the example of
//! Dantzig–Wolfe decomposition algorithm for multi-commodity transportation
//! problem" (§4). This module implements that algorithm:
//!
//! * a **restricted master** over convex combinations of per-commodity
//!   extreme flows, with shared arc-capacity rows,
//! * per-commodity **pricing subproblems** (transportation LPs with
//!   dual-adjusted costs), solved through the [`SubproblemSolver`] trait —
//!   locally, in a thread pool, or by remote MathCloud solver services,
//! * exact convergence: with rational arithmetic the loop stops exactly when
//!   no column has negative reduced cost.

use std::fmt;

use mathcloud_exact::Rational;

use crate::lp::{Lp, Relation};
use crate::simplex::{solve, LpOutcome};
use crate::transport::MultiCommodityProblem;

/// Solves one pricing subproblem: commodity `k`'s transportation LP under
/// modified arc costs. Implementations may run locally or call a remote
/// MathCloud solver service; the engine issues all `k` calls of one
/// iteration concurrently.
pub trait SubproblemSolver: Sync {
    /// Returns the optimal flow (row-major arcs) for commodity `commodity`
    /// under `costs`.
    ///
    /// # Errors
    ///
    /// A human-readable reason (remote failure, infeasible subproblem).
    fn solve_subproblem(
        &self,
        commodity: usize,
        costs: &[Vec<Rational>],
    ) -> Result<Vec<Rational>, String>;
}

/// The in-process solver: each pricing problem runs on the local simplex.
#[derive(Debug, Clone)]
pub struct LocalSolver {
    problem: MultiCommodityProblem,
}

impl LocalSolver {
    /// Creates a local solver for the given problem.
    pub fn new(problem: MultiCommodityProblem) -> Self {
        LocalSolver { problem }
    }
}

impl SubproblemSolver for LocalSolver {
    fn solve_subproblem(
        &self,
        commodity: usize,
        costs: &[Vec<Rational>],
    ) -> Result<Vec<Rational>, String> {
        let sub = &self.problem.commodities[commodity];
        let lp = sub.to_lp_with_costs(costs);
        match solve(&lp) {
            LpOutcome::Optimal(sol) => Ok(sol.values),
            other => Err(format!("subproblem {commodity} not optimal: {other:?}")),
        }
    }
}

/// Options controlling the decomposition loop.
#[derive(Debug, Clone)]
pub struct DwOptions {
    /// Hard cap on column-generation iterations (safety net; exact
    /// arithmetic converges finitely anyway).
    pub max_iterations: usize,
    /// Solve the iteration's subproblems on parallel threads — the paper's
    /// "independent problems are solved in parallel" behaviour.
    pub parallel: bool,
}

impl Default for DwOptions {
    fn default() -> Self {
        DwOptions {
            max_iterations: 200,
            parallel: true,
        }
    }
}

/// Statistics from a decomposition run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DwStats {
    /// Column-generation iterations performed.
    pub iterations: usize,
    /// Total columns generated (including the initial ones).
    pub columns: usize,
    /// Pricing subproblems solved.
    pub subproblems_solved: usize,
}

/// The result of a decomposition run.
#[derive(Debug, Clone)]
pub struct DwSolution {
    /// Optimal objective value (equals the monolithic LP optimum).
    pub objective: Rational,
    /// Per-commodity arc flows (row-major), recovered from the convex
    /// combination of columns.
    pub flows: Vec<Vec<Rational>>,
    /// Run statistics.
    pub stats: DwStats,
}

/// Errors from the decomposition.
#[derive(Debug, Clone, PartialEq)]
pub enum DwError {
    /// A subproblem solver failed.
    Subproblem(String),
    /// The master problem is infeasible (capacities cannot carry demand).
    Infeasible,
    /// The iteration cap was hit before convergence.
    IterationLimit,
}

impl fmt::Display for DwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DwError::Subproblem(m) => write!(f, "pricing subproblem failed: {m}"),
            DwError::Infeasible => write!(f, "master problem is infeasible"),
            DwError::IterationLimit => write!(f, "column generation hit its iteration limit"),
        }
    }
}

impl std::error::Error for DwError {}

struct Column {
    commodity: usize,
    /// Arc flows of the extreme point.
    flow: Vec<Rational>,
    /// True cost of the column (original costs · flow).
    cost: Rational,
}

/// Runs Dantzig–Wolfe column generation on a multi-commodity transportation
/// problem.
///
/// # Errors
///
/// [`DwError`] on infeasibility, solver failure or iteration cap.
///
/// # Examples
///
/// ```
/// use mathcloud_opt::transport::MultiCommodityProblem;
/// use mathcloud_opt::dw::{solve_dantzig_wolfe, DwOptions, LocalSolver};
///
/// let mc = MultiCommodityProblem::random(2, 2, 3, 7);
/// let solver = LocalSolver::new(mc.clone());
/// let dw = solve_dantzig_wolfe(&mc, &solver, &DwOptions::default()).unwrap();
/// let direct = mathcloud_opt::solve(&mc.to_lp()).optimal().unwrap();
/// assert_eq!(dw.objective, direct.objective);
/// ```
pub fn solve_dantzig_wolfe(
    problem: &MultiCommodityProblem,
    solver: &dyn SubproblemSolver,
    options: &DwOptions,
) -> Result<DwSolution, DwError> {
    let (n, m) = problem.shape();
    let arcs = n * m;
    let k = problem.num_commodities();
    let mut stats = DwStats::default();

    // Big-M penalty for artificial capacity overflow, guaranteeing an
    // initially feasible master. Exact arithmetic makes any sufficiently
    // large M safe; total_cost_bound is one.
    let mut bound = Rational::one();
    for c in &problem.commodities {
        let worst: Rational = c
            .costs
            .iter()
            .flatten()
            .map(|x| x.abs())
            .fold(Rational::zero(), |acc, x| if x > acc { x } else { acc });
        bound += &(&worst * &c.total_demand());
    }
    let big_m = &bound * &Rational::from(2);

    // Initial columns: each commodity's unconstrained optimum. Generated
    // with the same parallel dispatch as pricing iterations.
    let initial = run_pricing(problem, solver, k, options.parallel, |c| {
        problem.commodities[c].costs.clone()
    })
    .map_err(DwError::Subproblem)?;
    stats.subproblems_solved += k;
    let mut columns: Vec<Column> = initial
        .into_iter()
        .map(|(c, flow)| {
            let cost = column_cost(problem, c, &flow);
            Column {
                commodity: c,
                flow,
                cost,
            }
        })
        .collect();
    stats.columns = columns.len();

    loop {
        if stats.iterations >= options.max_iterations {
            return Err(DwError::IterationLimit);
        }
        stats.iterations += 1;

        // ---- Restricted master -------------------------------------
        // Vars: one θ per column, then one overflow var per arc.
        let num_theta = columns.len();
        let mut master = Lp::new(num_theta + arcs);
        for (p, col) in columns.iter().enumerate() {
            master.set_objective(p, col.cost.clone());
        }
        for a in 0..arcs {
            master.set_objective(num_theta + a, big_m.clone());
        }
        // Capacity rows (first `arcs` rows → duals π).
        for a in 0..arcs {
            let mut row: Vec<(usize, Rational)> = columns
                .iter()
                .enumerate()
                .filter(|(_, col)| !col.flow[a].is_zero())
                .map(|(p, col)| (p, col.flow[a].clone()))
                .collect();
            row.push((num_theta + a, Rational::from(-1)));
            master.constrain(row, Relation::Le, problem.capacities[a / m][a % m].clone());
        }
        // Convexity rows (next `k` rows → duals μ).
        for c in 0..k {
            let row: Vec<(usize, Rational)> = columns
                .iter()
                .enumerate()
                .filter(|(_, col)| col.commodity == c)
                .map(|(p, _)| (p, Rational::one()))
                .collect();
            master.constrain(row, Relation::Eq, Rational::one());
        }
        let master_sol = match solve(&master) {
            LpOutcome::Optimal(s) => s,
            _ => return Err(DwError::Infeasible),
        };
        let pi = &master_sol.duals[..arcs];
        let mu = &master_sol.duals[arcs..arcs + k];

        // ---- Pricing: all commodities of this iteration in parallel ----
        let priced = run_pricing(problem, solver, k, options.parallel, |c| {
            let mut adjusted = problem.commodities[c].costs.clone();
            for (i, row) in adjusted.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    let a = i * m + j;
                    if !pi[a].is_zero() {
                        *cell = &*cell - &pi[a];
                    }
                }
            }
            adjusted
        })
        .map_err(DwError::Subproblem)?;
        stats.subproblems_solved += k;

        // ---- Add improving columns -----------------------------------
        let mut improved = false;
        for (c, flow) in priced {
            // Reduced cost of the candidate column:
            //   (c_c − π)·x* − μ_c  =  true_cost − π·x* − μ_c
            let true_cost = column_cost(problem, c, &flow);
            let mut pi_dot = Rational::zero();
            for (a, pia) in pi.iter().enumerate() {
                if !pia.is_zero() && !flow[a].is_zero() {
                    pi_dot += &(pia * &flow[a]);
                }
            }
            let reduced = &(&true_cost - &pi_dot) - &mu[c];
            if reduced.signum() < 0 {
                // Skip exact duplicates (degenerate masters can reprice an
                // existing column).
                let duplicate = columns
                    .iter()
                    .any(|col| col.commodity == c && col.flow == flow);
                if !duplicate {
                    columns.push(Column {
                        commodity: c,
                        flow,
                        cost: true_cost,
                    });
                    improved = true;
                }
            }
        }

        if !improved {
            // Converged. Reject solutions that still lean on overflow vars:
            // then the true problem is infeasible.
            let overflow_used = (0..arcs).any(|a| !master_sol.values[num_theta + a].is_zero());
            if overflow_used {
                return Err(DwError::Infeasible);
            }
            stats.columns = columns.len();
            // Recover per-commodity flows from θ.
            let mut flows = vec![vec![Rational::zero(); arcs]; k];
            for (p, col) in columns.iter().enumerate() {
                // Columns added on the final iteration have no θ value.
                let theta = master_sol
                    .values
                    .get(p)
                    .cloned()
                    .unwrap_or_else(Rational::zero);
                if theta.is_zero() {
                    continue;
                }
                for (a, f) in col.flow.iter().enumerate() {
                    if !f.is_zero() {
                        flows[col.commodity][a] = &flows[col.commodity][a] + &(&theta * f);
                    }
                }
            }
            let objective = master_sol.objective;
            return Ok(DwSolution {
                objective,
                flows,
                stats,
            });
        }
    }
}

/// Solves one subproblem per commodity, concurrently when requested,
/// returning `(commodity, flow)` pairs in arbitrary order.
fn run_pricing<F>(
    _problem: &MultiCommodityProblem,
    solver: &dyn SubproblemSolver,
    k: usize,
    parallel: bool,
    costs_for: F,
) -> Result<Vec<(usize, Vec<Rational>)>, String>
where
    F: Fn(usize) -> Vec<Vec<Rational>> + Sync,
{
    let price_one = |c: usize| -> Result<(usize, Vec<Rational>), String> {
        let costs = costs_for(c);
        solver.solve_subproblem(c, &costs).map(|flow| (c, flow))
    };
    if parallel {
        let results = std::sync::Mutex::new(Vec::with_capacity(k));
        std::thread::scope(|scope| {
            for c in 0..k {
                let results = &results;
                let price_one = &price_one;
                scope.spawn(move || {
                    let r = price_one(c);
                    results.lock().expect("pricing results lock").push(r);
                });
            }
        });
        results
            .into_inner()
            .expect("pricing results lock")
            .into_iter()
            .collect()
    } else {
        (0..k).map(price_one).collect()
    }
}

fn column_cost(problem: &MultiCommodityProblem, commodity: usize, flow: &[Rational]) -> Rational {
    let (_, m) = problem.shape();
    let mut cost = Rational::zero();
    for (a, x) in flow.iter().enumerate() {
        if !x.is_zero() {
            cost += &(&problem.commodities[commodity].costs[a / m][a % m] * x);
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_matches_direct(mc: &MultiCommodityProblem) -> DwSolution {
        let solver = LocalSolver::new(mc.clone());
        let dw = solve_dantzig_wolfe(
            mc,
            &solver,
            &DwOptions {
                parallel: false,
                ..Default::default()
            },
        )
        .expect("decomposition converges");
        let direct = solve(&mc.to_lp()).optimal().expect("direct solve");
        assert_eq!(
            dw.objective, direct.objective,
            "DW must match the monolithic optimum"
        );
        dw
    }

    #[test]
    fn matches_direct_solution_on_random_instances() {
        for seed in [3u64, 11, 29] {
            let mc = MultiCommodityProblem::random(2, 2, 2, seed);
            check_matches_direct(&mc);
        }
    }

    #[test]
    fn larger_instance_with_three_commodities() {
        let mc = MultiCommodityProblem::random(3, 2, 3, 17);
        let dw = check_matches_direct(&mc);
        assert!(dw.stats.iterations >= 1);
        assert!(dw.stats.columns >= 3, "at least one column per commodity");
    }

    #[test]
    fn recovered_flows_are_feasible_and_cost_the_objective() {
        let mc = MultiCommodityProblem::random(2, 2, 3, 23);
        let dw = check_matches_direct(&mc);
        let (n, m) = mc.shape();
        // Check per-commodity transportation feasibility and capacities.
        let mut total_cost = Rational::zero();
        for (c, flow) in dw.flows.iter().enumerate() {
            let sub = &mc.commodities[c];
            for i in 0..n {
                let shipped: Rational = (0..m).map(|j| flow[i * m + j].clone()).sum();
                assert!(shipped <= sub.supplies[i], "supply violated");
            }
            for j in 0..m {
                let delivered: Rational = (0..n).map(|i| flow[i * m + j].clone()).sum();
                assert!(delivered >= sub.demands[j], "demand violated");
            }
            total_cost += &column_cost(&mc, c, flow);
        }
        for a in 0..n * m {
            let used: Rational = dw.flows.iter().map(|f| f[a].clone()).sum();
            assert!(used <= mc.capacities[a / m][a % m], "capacity violated");
        }
        assert_eq!(total_cost, dw.objective);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let mc = MultiCommodityProblem::random(3, 2, 2, 31);
        let solver = LocalSolver::new(mc.clone());
        let serial = solve_dantzig_wolfe(
            &mc,
            &solver,
            &DwOptions {
                parallel: false,
                ..Default::default()
            },
        )
        .unwrap();
        let parallel = solve_dantzig_wolfe(
            &mc,
            &solver,
            &DwOptions {
                parallel: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(serial.objective, parallel.objective);
    }

    #[test]
    fn infeasible_capacities_are_detected() {
        let mut mc = MultiCommodityProblem::random(2, 2, 2, 41);
        for row in &mut mc.capacities {
            for cap in row {
                *cap = Rational::zero();
            }
        }
        let solver = LocalSolver::new(mc.clone());
        let err = solve_dantzig_wolfe(&mc, &solver, &DwOptions::default()).unwrap_err();
        assert_eq!(err, DwError::Infeasible);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let mc = MultiCommodityProblem::random(2, 2, 3, 13);
        let solver = LocalSolver::new(mc.clone());
        let err = solve_dantzig_wolfe(
            &mc,
            &solver,
            &DwOptions {
                max_iterations: 0,
                parallel: false,
            },
        )
        .unwrap_err();
        assert_eq!(err, DwError::IterationLimit);
    }

    #[test]
    fn failing_solver_is_reported() {
        struct Broken;
        impl SubproblemSolver for Broken {
            fn solve_subproblem(
                &self,
                _: usize,
                _: &[Vec<Rational>],
            ) -> Result<Vec<Rational>, String> {
                Err("remote solver unavailable".into())
            }
        }
        let mc = MultiCommodityProblem::random(2, 2, 2, 5);
        let err = solve_dantzig_wolfe(&mc, &Broken, &DwOptions::default()).unwrap_err();
        assert!(matches!(err, DwError::Subproblem(m) if m.contains("unavailable")));
    }
}
