//! Transportation problems, single- and multi-commodity.
//!
//! The multi-commodity transportation problem is the validation case the
//! paper uses for its distributed Dantzig–Wolfe decomposition: commodities
//! share arc capacities, which is exactly the block-angular structure column
//! generation exploits.

use mathcloud_exact::Rational;

use crate::lp::{Lp, Relation};

/// A (balanced) single-commodity transportation problem.
///
/// # Examples
///
/// ```
/// use mathcloud_opt::transport::TransportationProblem;
///
/// let p = TransportationProblem::random(3, 4, 42);
/// let sol = mathcloud_opt::solve(&p.to_lp()).optimal().expect("balanced instance");
/// assert!(sol.objective.signum() >= 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransportationProblem {
    /// Supply available at each source.
    pub supplies: Vec<Rational>,
    /// Demand required at each sink.
    pub demands: Vec<Rational>,
    /// `costs[i][j]` — unit cost of shipping source `i` → sink `j`.
    pub costs: Vec<Vec<Rational>>,
}

impl TransportationProblem {
    /// Number of sources.
    pub fn sources(&self) -> usize {
        self.supplies.len()
    }

    /// Number of sinks.
    pub fn sinks(&self) -> usize {
        self.demands.len()
    }

    /// Variable index of arc `(i, j)` in [`TransportationProblem::to_lp`].
    pub fn arc(&self, i: usize, j: usize) -> usize {
        i * self.sinks() + j
    }

    /// Builds the LP: minimize shipping cost subject to supply (≤) and
    /// demand (≥) rows.
    pub fn to_lp(&self) -> Lp {
        self.to_lp_with_costs(&self.costs)
    }

    /// Builds the LP with substituted arc costs — the Dantzig–Wolfe pricing
    /// subproblem uses this with dual-adjusted costs.
    ///
    /// # Panics
    ///
    /// Panics if `costs` has the wrong shape.
    pub fn to_lp_with_costs(&self, costs: &[Vec<Rational>]) -> Lp {
        let (n, m) = (self.sources(), self.sinks());
        assert_eq!(costs.len(), n, "cost matrix has wrong row count");
        let mut lp = Lp::new(n * m);
        for (i, cost_row) in costs.iter().enumerate() {
            assert_eq!(cost_row.len(), m, "cost matrix has wrong column count");
            for (j, c) in cost_row.iter().enumerate() {
                lp.set_objective(self.arc(i, j), c.clone());
                lp.set_name(self.arc(i, j), &format!("x[{i},{j}]"));
            }
        }
        for i in 0..n {
            let row: Vec<(usize, Rational)> =
                (0..m).map(|j| (self.arc(i, j), Rational::one())).collect();
            lp.constrain(row, Relation::Le, self.supplies[i].clone());
        }
        for j in 0..m {
            let row: Vec<(usize, Rational)> =
                (0..n).map(|i| (self.arc(i, j), Rational::one())).collect();
            lp.constrain(row, Relation::Ge, self.demands[j].clone());
        }
        lp
    }

    /// Deterministic pseudo-random balanced instance (LCG; no external RNG
    /// so instances are reproducible across platforms).
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn random(sources: usize, sinks: usize, seed: u64) -> Self {
        assert!(
            sources > 0 && sinks > 0,
            "need at least one source and sink"
        );
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        let costs: Vec<Vec<Rational>> = (0..sources)
            .map(|_| {
                (0..sinks)
                    .map(|_| Rational::from(1 + next() % 20))
                    .collect()
            })
            .collect();
        let demands: Vec<Rational> = (0..sinks)
            .map(|_| Rational::from(1 + next() % 10))
            .collect();
        let total_demand: Rational = demands.iter().cloned().sum();
        // Spread total demand over sources, giving the last source the
        // remainder so the instance is exactly balanced.
        let mut supplies = Vec::with_capacity(sources);
        let mut assigned = Rational::zero();
        for i in 0..sources {
            if i + 1 == sources {
                supplies.push(&total_demand - &assigned);
            } else {
                let share = &total_demand / &Rational::from(sources as i64);
                let floor = Rational::from(share.numer().clone() / share.denom().clone());
                assigned += &floor;
                supplies.push(floor);
            }
        }
        TransportationProblem {
            supplies,
            demands,
            costs,
        }
    }

    /// Total demand (== total supply for balanced instances).
    pub fn total_demand(&self) -> Rational {
        self.demands.iter().cloned().sum()
    }
}

/// A multi-commodity transportation problem: per-commodity transportation
/// structure plus shared arc capacities.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCommodityProblem {
    /// The commodities (all over the same source/sink sets).
    pub commodities: Vec<TransportationProblem>,
    /// `capacities[i][j]` — shared capacity of arc `(i, j)`.
    pub capacities: Vec<Vec<Rational>>,
}

impl MultiCommodityProblem {
    /// Number of commodities.
    pub fn num_commodities(&self) -> usize {
        self.commodities.len()
    }

    /// Sources/sinks shape, taken from the first commodity.
    ///
    /// # Panics
    ///
    /// Panics when there are no commodities.
    pub fn shape(&self) -> (usize, usize) {
        let first = self.commodities.first().expect("at least one commodity");
        (first.sources(), first.sinks())
    }

    /// Builds the full (undecomposed) LP: the baseline a single monolithic
    /// solver would tackle.
    pub fn to_lp(&self) -> Lp {
        let (n, m) = self.shape();
        let k = self.num_commodities();
        let mut lp = Lp::new(k * n * m);
        let var = |c: usize, i: usize, j: usize| c * n * m + i * m + j;
        for (c, prob) in self.commodities.iter().enumerate() {
            for i in 0..n {
                for j in 0..m {
                    lp.set_objective(var(c, i, j), prob.costs[i][j].clone());
                    lp.set_name(var(c, i, j), &format!("x[{c},{i},{j}]"));
                }
            }
            for i in 0..n {
                let row: Vec<(usize, Rational)> =
                    (0..m).map(|j| (var(c, i, j), Rational::one())).collect();
                lp.constrain(row, Relation::Le, prob.supplies[i].clone());
            }
            for j in 0..m {
                let row: Vec<(usize, Rational)> =
                    (0..n).map(|i| (var(c, i, j), Rational::one())).collect();
                lp.constrain(row, Relation::Ge, prob.demands[j].clone());
            }
        }
        // Coupling: Σ_c x[c,i,j] <= capacity[i][j].
        for i in 0..n {
            for j in 0..m {
                let row: Vec<(usize, Rational)> =
                    (0..k).map(|c| (var(c, i, j), Rational::one())).collect();
                lp.constrain(row, Relation::Le, self.capacities[i][j].clone());
            }
        }
        lp
    }

    /// Deterministic random instance with `k` commodities. Capacities are
    /// sized near total flow so coupling constraints bind without making the
    /// instance infeasible.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    pub fn random(k: usize, sources: usize, sinks: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one commodity");
        let commodities: Vec<TransportationProblem> = (0..k)
            .map(|c| {
                TransportationProblem::random(sources, sinks, seed.wrapping_add(c as u64 * 7919))
            })
            .collect();
        let total: Rational = commodities
            .iter()
            .map(TransportationProblem::total_demand)
            .sum();
        // Capacity per arc: generous enough to stay feasible, tight enough
        // that several arcs bind.
        let arcs = (sources * sinks) as i64;
        let per_arc = &(&total * &Rational::from(3)) / &Rational::from(arcs);
        let capacities: Vec<Vec<Rational>> = (0..sources)
            .map(|_| (0..sinks).map(|_| per_arc.clone()).collect())
            .collect();
        MultiCommodityProblem {
            commodities,
            capacities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::solve;

    #[test]
    fn random_instances_are_balanced_and_solvable() {
        for seed in [1u64, 7, 42] {
            let p = TransportationProblem::random(3, 4, seed);
            let supply: Rational = p.supplies.iter().cloned().sum();
            assert_eq!(supply, p.total_demand(), "seed {seed}");
            let sol = solve(&p.to_lp()).optimal().expect("balanced => feasible");
            assert!(p.to_lp().is_feasible(&sol.values));
        }
    }

    #[test]
    fn known_small_instance() {
        // 2 sources, 2 sinks; cheapest assignment is the diagonal.
        let p = TransportationProblem {
            supplies: vec![Rational::from(5), Rational::from(5)],
            demands: vec![Rational::from(5), Rational::from(5)],
            costs: vec![
                vec![Rational::from(1), Rational::from(10)],
                vec![Rational::from(10), Rational::from(1)],
            ],
        };
        let sol = solve(&p.to_lp()).optimal().unwrap();
        assert_eq!(sol.objective, Rational::from(10));
        assert_eq!(sol.values[p.arc(0, 0)], Rational::from(5));
        assert_eq!(sol.values[p.arc(1, 1)], Rational::from(5));
    }

    #[test]
    fn infeasible_when_demand_exceeds_supply() {
        let p = TransportationProblem {
            supplies: vec![Rational::from(1)],
            demands: vec![Rational::from(2)],
            costs: vec![vec![Rational::from(1)]],
        };
        assert_eq!(solve(&p.to_lp()), crate::LpOutcome::Infeasible);
    }

    #[test]
    fn substituted_costs_change_the_objective_only() {
        let p = TransportationProblem::random(2, 3, 5);
        let zero_costs: Vec<Vec<Rational>> = vec![vec![Rational::zero(); p.sinks()]; p.sources()];
        let sol = solve(&p.to_lp_with_costs(&zero_costs)).optimal().unwrap();
        assert_eq!(sol.objective, Rational::zero());
    }

    #[test]
    fn multicommodity_lp_shape_and_feasibility() {
        let mc = MultiCommodityProblem::random(2, 2, 3, 9);
        let lp = mc.to_lp();
        let (n, m) = mc.shape();
        assert_eq!(lp.num_vars(), 2 * n * m);
        assert_eq!(lp.num_constraints(), 2 * (n + m) + n * m);
        let sol = solve(&lp)
            .optimal()
            .expect("generated instances are feasible");
        assert!(lp.is_feasible(&sol.values));
    }
}
