//! Non-negative mixture fitting of diffractograms.
//!
//! Given an observed curve `y` and basis curves `B_k` (one per candidate
//! nanostructure), find non-negative weights `w` minimizing
//! `‖Σ_k w_k·B_k − y‖₂²` — the optimization step of the paper's X-ray
//! analysis workflow. Solved by projected coordinate descent, which for this
//! convex problem converges to the global optimum.

/// The result of a mixture fit.
#[derive(Debug, Clone, PartialEq)]
pub struct FitResult {
    /// One non-negative weight per basis curve.
    pub weights: Vec<f64>,
    /// Final sum of squared residuals.
    pub residual: f64,
    /// Coordinate-descent sweeps performed.
    pub iterations: usize,
}

impl FitResult {
    /// Weights normalized to fractions summing to 1 (the paper reports a
    /// *distribution* over structures). All-zero weights stay zero.
    pub fn fractions(&self) -> Vec<f64> {
        let total: f64 = self.weights.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.weights.len()];
        }
        self.weights.iter().map(|w| w / total).collect()
    }

    /// Index of the dominant component, if any weight is positive.
    pub fn dominant(&self) -> Option<usize> {
        let (idx, &w) = self
            .weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))?;
        if w > 0.0 {
            Some(idx)
        } else {
            None
        }
    }
}

/// Fits non-negative mixture weights by cyclic projected coordinate descent.
///
/// Runs until the squared-residual improvement of a full sweep drops below
/// `1e-12` (relative) or `max_sweeps` is reached.
///
/// # Panics
///
/// Panics when curves have inconsistent lengths or the basis is empty.
///
/// # Examples
///
/// ```
/// use mathcloud_xray::fit_mixture;
///
/// let basis = vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 1.0]];
/// let y = vec![2.0, 3.0, 3.0];
/// let fit = fit_mixture(&basis, &y, 100);
/// assert!((fit.weights[0] - 2.0).abs() < 1e-9);
/// assert!((fit.weights[1] - 3.0).abs() < 1e-9);
/// ```
pub fn fit_mixture(basis: &[Vec<f64>], y: &[f64], max_sweeps: usize) -> FitResult {
    assert!(!basis.is_empty(), "need at least one basis curve");
    let n = y.len();
    for (k, b) in basis.iter().enumerate() {
        assert_eq!(b.len(), n, "basis curve {k} has wrong length");
    }
    let k = basis.len();
    let mut w = vec![0.0f64; k];
    // residual r = y - Σ w_k B_k (starts at y since w = 0).
    let mut r: Vec<f64> = y.to_vec();
    let norms: Vec<f64> = basis
        .iter()
        .map(|b| b.iter().map(|x| x * x).sum())
        .collect();

    let sq = |r: &[f64]| r.iter().map(|x| x * x).sum::<f64>();
    let mut prev = sq(&r);
    let mut sweeps = 0;
    while sweeps < max_sweeps {
        sweeps += 1;
        for j in 0..k {
            if norms[j] == 0.0 {
                continue;
            }
            // Optimal unconstrained update for coordinate j, then project.
            let g: f64 = basis[j].iter().zip(&r).map(|(b, ri)| b * ri).sum();
            let new_w = (w[j] + g / norms[j]).max(0.0);
            let delta = new_w - w[j];
            if delta != 0.0 {
                for (ri, b) in r.iter_mut().zip(&basis[j]) {
                    *ri -= delta * b;
                }
                w[j] = new_w;
            }
        }
        let cur = sq(&r);
        if prev - cur <= 1e-12 * prev.max(1e-30) {
            prev = cur;
            break;
        }
        prev = cur;
    }
    FitResult {
        weights: w,
        residual: prev,
        iterations: sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Nanostructure, StructureKind};
    use crate::scattering::{debye_curve, QGrid};
    use crate::synthesize_film;

    #[test]
    fn recovers_exact_mixtures_of_orthogonal_bases() {
        let basis = vec![vec![1.0, 0.0], vec![0.0, 2.0]];
        let fit = fit_mixture(&basis, &[3.0, 4.0], 50);
        assert!((fit.weights[0] - 3.0).abs() < 1e-10);
        assert!((fit.weights[1] - 2.0).abs() < 1e-10);
        assert!(fit.residual < 1e-18);
    }

    #[test]
    fn negative_components_are_clamped() {
        // y is anti-correlated with the basis: best non-negative weight is 0.
        let basis = vec![vec![1.0, 1.0]];
        let fit = fit_mixture(&basis, &[-1.0, -1.0], 50);
        assert_eq!(fit.weights, vec![0.0]);
        assert!(fit.dominant().is_none());
    }

    #[test]
    fn fractions_sum_to_one() {
        let basis = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let fit = fit_mixture(&basis, &[1.0, 3.0], 50);
        let f = fit.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(fit.dominant(), Some(1));
    }

    #[test]
    fn recovers_planted_structure_mixture() {
        // The paper's headline analysis: a film dominated by low-aspect
        // toroids, with minority tubes and spheres.
        let grid = QGrid::paper_range(96);
        let kinds = [
            StructureKind::Toroid {
                major_r: 1.0,
                minor_r: 0.45,
            }, // low aspect ratio
            StructureKind::Tube {
                radius: 0.5,
                length: 3.0,
            },
            StructureKind::Sphere { radius: 0.8 },
        ];
        let basis: Vec<Vec<f64>> = kinds
            .iter()
            .map(|&k| debye_curve(&Nanostructure::build(k), &grid))
            .collect();
        let truth = [0.6, 0.25, 0.15];
        let film = synthesize_film(&basis, &truth, 0.01, 42);
        let fit = fit_mixture(&basis, &film, 500);
        assert_eq!(
            fit.dominant(),
            Some(0),
            "toroids must dominate: {:?}",
            fit.fractions()
        );
        let fractions = fit.fractions();
        for (got, want) in fractions.iter().zip(&truth) {
            assert!(
                (got - want).abs() < 0.08,
                "fractions {fractions:?} vs {truth:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn inconsistent_lengths_panic() {
        let _ = fit_mixture(&[vec![1.0, 2.0]], &[1.0], 10);
    }

    #[test]
    fn zero_basis_curve_is_ignored() {
        let basis = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let fit = fit_mixture(&basis, &[2.0, 2.0], 50);
        assert_eq!(fit.weights[0], 0.0);
        assert!((fit.weights[1] - 2.0).abs() < 1e-10);
    }
}
