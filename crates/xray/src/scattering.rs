//! Debye-formula scattering curves.

use crate::geometry::{dist, Nanostructure};

/// A uniform grid of scattering-vector magnitudes `q` (nm⁻¹).
///
/// The paper's measurements cover `q ≈ 5…70 nm⁻¹`; [`QGrid::paper_range`]
/// reproduces that window.
#[derive(Debug, Clone, PartialEq)]
pub struct QGrid {
    points: Vec<f64>,
}

impl QGrid {
    /// A uniform grid of `n` points over `[q_min, q_max]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q_min < q_max` and `n >= 2`.
    pub fn uniform(q_min: f64, q_max: f64, n: usize) -> Self {
        assert!(q_min > 0.0 && q_max > q_min && n >= 2, "invalid q grid");
        let step = (q_max - q_min) / (n - 1) as f64;
        QGrid {
            points: (0..n).map(|i| q_min + step * i as f64).collect(),
        }
    }

    /// The measurement window of the paper (5…70 nm⁻¹).
    pub fn paper_range(n: usize) -> Self {
        QGrid::uniform(5.0, 70.0, n)
    }

    /// The grid points.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` for an empty grid (never constructed by this API).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Computes the Debye scattering curve of a structure, normalized per atom
/// pair so differently-sized structures are comparable:
///
/// ```text
/// I(q) = (1/N²)·Σᵢ Σⱼ sin(q·rᵢⱼ)/(q·rᵢⱼ)      with sin(0)/0 ≡ 1
/// ```
///
/// # Examples
///
/// ```
/// use mathcloud_xray::{debye_curve, Nanostructure, QGrid, StructureKind};
///
/// let s = Nanostructure::build(StructureKind::Sphere { radius: 1.0 });
/// let curve = debye_curve(&s, &QGrid::paper_range(32));
/// assert_eq!(curve.len(), 32);
/// assert!(curve.iter().all(|v| v.is_finite()));
/// ```
pub fn debye_curve(structure: &Nanostructure, grid: &QGrid) -> Vec<f64> {
    let atoms = structure.atoms();
    let n = atoms.len();
    // Precompute pair distances once; reused across all q.
    let mut distances = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in i + 1..n {
            distances.push(dist(&atoms[i], &atoms[j]));
        }
    }
    let norm = (n * n) as f64;
    grid.points()
        .iter()
        .map(|&q| {
            let mut sum = n as f64; // i == j terms: sinc(0) = 1
            for &r in &distances {
                let x = q * r;
                sum += 2.0 * x.sin() / x;
            }
            sum / norm
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::StructureKind;

    #[test]
    fn grid_construction() {
        let g = QGrid::uniform(1.0, 3.0, 5);
        assert_eq!(g.points(), &[1.0, 1.5, 2.0, 2.5, 3.0]);
        assert_eq!(QGrid::paper_range(10).points()[0], 5.0);
        assert_eq!(*QGrid::paper_range(10).points().last().unwrap(), 70.0);
    }

    #[test]
    #[should_panic(expected = "invalid q grid")]
    fn bad_grid_panics() {
        let _ = QGrid::uniform(0.0, 1.0, 5);
    }

    #[test]
    fn curve_tends_to_one_at_small_q() {
        // As q → 0, sinc → 1, so normalized I → 1.
        let s = Nanostructure::build(StructureKind::Sphere { radius: 0.5 });
        let g = QGrid::uniform(1e-6, 1e-5, 2);
        let curve = debye_curve(&s, &g);
        assert!((curve[0] - 1.0).abs() < 1e-6, "{}", curve[0]);
    }

    #[test]
    fn curve_decays_at_large_q() {
        let s = Nanostructure::build(StructureKind::Sphere { radius: 1.0 });
        let g = QGrid::paper_range(64);
        let curve = debye_curve(&s, &g);
        // High-q intensity collapses toward the self-term 1/N.
        let n = s.atoms().len() as f64;
        assert!(curve[63] < 0.3, "high-q value {}", curve[63]);
        assert!(curve[63] > 1.0 / n / 10.0);
    }

    #[test]
    fn different_shapes_give_distinguishable_curves() {
        let g = QGrid::paper_range(48);
        let toroid = debye_curve(
            &Nanostructure::build(StructureKind::Toroid {
                major_r: 1.0,
                minor_r: 0.4,
            }),
            &g,
        );
        let sphere = debye_curve(
            &Nanostructure::build(StructureKind::Sphere { radius: 1.0 }),
            &g,
        );
        let l2: f64 = toroid
            .iter()
            .zip(&sphere)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        // Over the paper's q window the per-pair-normalized curves are small
        // but clearly separable; the fit tests rely on this margin.
        assert!(l2 > 0.02, "curves too similar: {l2}");
    }

    #[test]
    fn curve_is_deterministic() {
        let g = QGrid::paper_range(16);
        let a = debye_curve(
            &Nanostructure::build(StructureKind::Flake { side: 1.5 }),
            &g,
        );
        let b = debye_curve(
            &Nanostructure::build(StructureKind::Flake { side: 1.5 }),
            &g,
        );
        assert_eq!(a, b);
    }
}
