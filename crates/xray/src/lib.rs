//! X-ray scattering analysis of carbon nanostructures.
//!
//! The paper's second application (§4, refs [10-11]) interprets X-ray
//! diffractometry of carbonaceous films deposited in the T-10 tokamak: it
//! computes scattering curves for candidate nanostructures in parallel on
//! the grid, then solves an optimization problem to find the most probable
//! topological/size distribution — revealing "the prevalence of
//! low-aspect-ratio toroids in tested films".
//!
//! This crate is the computational substrate for that workflow:
//!
//! * [`geometry`] — atomistic models of candidate structures (toroids,
//!   tubes, spherical shells, flat flakes),
//! * [`scattering`] — the Debye formula `I(q) = Σᵢⱼ sin(q·rᵢⱼ)/(q·rᵢⱼ)`,
//! * [`fit`] — non-negative mixture fitting of an observed diffractogram
//!   against a basis of computed curves,
//! * [`synthesize_film`] — a synthetic "experimental" film curve standing in
//!   for the proprietary tokamak measurements (see DESIGN.md).

pub mod fit;
pub mod geometry;
pub mod scattering;

pub use fit::{fit_mixture, FitResult};
pub use geometry::{Nanostructure, StructureKind};
pub use scattering::{debye_curve, QGrid};

/// Deterministic xorshift noise generator (no external RNG keeps the
/// synthetic experiment reproducible).
#[derive(Debug, Clone)]
pub struct Noise(u64);

impl Noise {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Noise(seed.max(1))
    }

    /// A pseudo-random value in `[-1, 1)`.
    pub fn next_symmetric(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

/// Synthesizes an "experimental" film diffractogram as a known mixture of
/// structure curves plus multiplicative noise.
///
/// The paper's measured data is unavailable (proprietary tokamak traces);
/// this synthetic stand-in exercises the same analysis pipeline and lets
/// tests verify that the fit recovers the planted mixture.
///
/// # Panics
///
/// Panics if `weights` and `basis` have different lengths.
pub fn synthesize_film(
    basis: &[Vec<f64>],
    weights: &[f64],
    noise_level: f64,
    seed: u64,
) -> Vec<f64> {
    assert_eq!(basis.len(), weights.len(), "one weight per basis curve");
    let n = basis.first().map(Vec::len).unwrap_or(0);
    let mut noise = Noise::new(seed);
    (0..n)
        .map(|i| {
            let clean: f64 = basis.iter().zip(weights).map(|(b, w)| w * b[i]).sum();
            clean * (1.0 + noise_level * noise.next_symmetric())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let mut a = Noise::new(7);
        let mut b = Noise::new(7);
        for _ in 0..100 {
            let x = a.next_symmetric();
            assert_eq!(x, b.next_symmetric());
            assert!((-1.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn synthesis_is_the_weighted_sum_when_noiseless() {
        let basis = vec![vec![1.0, 2.0], vec![10.0, 20.0]];
        let film = synthesize_film(&basis, &[0.5, 0.25], 0.0, 1);
        assert_eq!(film, vec![3.0, 6.0]);
    }
}
