//! Atomistic models of candidate carbon nanostructures.

use std::f64::consts::PI;

/// Approximate areal density of atoms on a graphene-like surface, in atoms
/// per square nanometre (graphene: ≈38.2 atoms/nm²; we sample sparser to
/// keep Debye sums fast while preserving curve shapes).
const AREAL_DENSITY: f64 = 8.0;

/// The families of structures considered in the paper's analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StructureKind {
    /// A torus: `major_r` (ring radius) and `minor_r` (tube radius), both in
    /// nm. Aspect ratio = `major_r / minor_r`; the paper's finding concerns
    /// *low*-aspect-ratio toroids.
    Toroid {
        /// Ring radius (nm).
        major_r: f64,
        /// Tube radius (nm).
        minor_r: f64,
    },
    /// An open single-wall tube: radius and length (nm).
    Tube {
        /// Cylinder radius (nm).
        radius: f64,
        /// Cylinder length (nm).
        length: f64,
    },
    /// A spherical shell (fullerene-like), radius in nm.
    Sphere {
        /// Shell radius (nm).
        radius: f64,
    },
    /// A flat square graphene flake with the given side (nm).
    Flake {
        /// Side length (nm).
        side: f64,
    },
}

impl StructureKind {
    /// A short label used in service inputs and reports.
    pub fn label(&self) -> String {
        match self {
            StructureKind::Toroid { major_r, minor_r } => {
                format!("toroid(R={major_r:.2},r={minor_r:.2})")
            }
            StructureKind::Tube { radius, length } => format!("tube(r={radius:.2},l={length:.2})"),
            StructureKind::Sphere { radius } => format!("sphere(r={radius:.2})"),
            StructureKind::Flake { side } => format!("flake(a={side:.2})"),
        }
    }

    /// Surface area (nm²), used to size the atom sample.
    pub fn surface_area(&self) -> f64 {
        match *self {
            StructureKind::Toroid { major_r, minor_r } => 4.0 * PI * PI * major_r * minor_r,
            StructureKind::Tube { radius, length } => 2.0 * PI * radius * length,
            StructureKind::Sphere { radius } => 4.0 * PI * radius * radius,
            StructureKind::Flake { side } => side * side,
        }
    }

    /// Aspect ratio where defined (toroids), the quantity the paper's
    /// conclusion is phrased in.
    pub fn aspect_ratio(&self) -> Option<f64> {
        match *self {
            StructureKind::Toroid { major_r, minor_r } => Some(major_r / minor_r),
            _ => None,
        }
    }
}

/// A concrete structure: its kind plus sampled atom positions.
#[derive(Debug, Clone)]
pub struct Nanostructure {
    kind: StructureKind,
    atoms: Vec<[f64; 3]>,
}

impl Nanostructure {
    /// Samples a structure's surface into atom positions.
    ///
    /// Sampling is deterministic (quasi-uniform lattices), so identical
    /// kinds produce identical curves on every platform.
    ///
    /// # Panics
    ///
    /// Panics on non-positive dimensions.
    pub fn build(kind: StructureKind) -> Self {
        let atoms = match kind {
            StructureKind::Toroid { major_r, minor_r } => {
                assert!(
                    major_r > 0.0 && minor_r > 0.0,
                    "torus radii must be positive"
                );
                sample_torus(major_r, minor_r)
            }
            StructureKind::Tube { radius, length } => {
                assert!(
                    radius > 0.0 && length > 0.0,
                    "tube dimensions must be positive"
                );
                sample_tube(radius, length)
            }
            StructureKind::Sphere { radius } => {
                assert!(radius > 0.0, "sphere radius must be positive");
                sample_sphere(radius)
            }
            StructureKind::Flake { side } => {
                assert!(side > 0.0, "flake side must be positive");
                sample_flake(side)
            }
        };
        Nanostructure { kind, atoms }
    }

    /// The structure kind.
    pub fn kind(&self) -> StructureKind {
        self.kind
    }

    /// The sampled atom positions (nm).
    pub fn atoms(&self) -> &[[f64; 3]] {
        &self.atoms
    }

    /// Largest pairwise extent (nm) — a sanity metric for tests.
    pub fn diameter(&self) -> f64 {
        let mut best = 0.0f64;
        for (i, a) in self.atoms.iter().enumerate() {
            for b in &self.atoms[i + 1..] {
                best = best.max(dist(a, b));
            }
        }
        best
    }
}

pub(crate) fn dist(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    (dx * dx + dy * dy + dz * dz).sqrt()
}

fn sample_torus(major_r: f64, minor_r: f64) -> Vec<[f64; 3]> {
    let area = 4.0 * PI * PI * major_r * minor_r;
    let target = (area * AREAL_DENSITY).max(16.0);
    // Lattice in the two angles, proportioned to the circumferences.
    let n_major = ((target * major_r / (major_r + minor_r)).sqrt() * 2.0)
        .ceil()
        .max(4.0) as usize;
    let n_minor = (target / n_major as f64).ceil().max(3.0) as usize;
    let mut atoms = Vec::with_capacity(n_major * n_minor);
    for i in 0..n_major {
        let u = 2.0 * PI * i as f64 / n_major as f64;
        for j in 0..n_minor {
            let v = 2.0 * PI * j as f64 / n_minor as f64;
            let w = major_r + minor_r * v.cos();
            atoms.push([w * u.cos(), w * u.sin(), minor_r * v.sin()]);
        }
    }
    atoms
}

fn sample_tube(radius: f64, length: f64) -> Vec<[f64; 3]> {
    let area = 2.0 * PI * radius * length;
    let target = (area * AREAL_DENSITY).max(16.0);
    let n_around = ((2.0 * PI * radius) * (target / area).sqrt())
        .ceil()
        .max(3.0) as usize;
    let n_along = (target / n_around as f64).ceil().max(2.0) as usize;
    let mut atoms = Vec::with_capacity(n_around * n_along);
    for i in 0..n_along {
        let z = length * (i as f64 / (n_along - 1).max(1) as f64 - 0.5);
        for j in 0..n_around {
            let t = 2.0 * PI * j as f64 / n_around as f64;
            atoms.push([radius * t.cos(), radius * t.sin(), z]);
        }
    }
    atoms
}

fn sample_sphere(radius: f64) -> Vec<[f64; 3]> {
    let area = 4.0 * PI * radius * radius;
    let n = (area * AREAL_DENSITY).max(16.0) as usize;
    // Fibonacci sphere: quasi-uniform, deterministic.
    let golden = PI * (3.0 - 5.0f64.sqrt());
    (0..n)
        .map(|i| {
            let y = 1.0 - 2.0 * (i as f64 + 0.5) / n as f64;
            let r = (1.0 - y * y).sqrt();
            let t = golden * i as f64;
            [radius * r * t.cos(), radius * y, radius * r * t.sin()]
        })
        .collect()
}

fn sample_flake(side: f64) -> Vec<[f64; 3]> {
    let target = (side * side * AREAL_DENSITY).max(9.0);
    let n = (target.sqrt().ceil() as usize).max(3);
    let mut atoms = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            atoms.push([
                side * (i as f64 / (n - 1) as f64 - 0.5),
                side * (j as f64 / (n - 1) as f64 - 0.5),
                0.0,
            ]);
        }
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_counts_scale_with_area() {
        let small = Nanostructure::build(StructureKind::Sphere { radius: 1.0 });
        let large = Nanostructure::build(StructureKind::Sphere { radius: 2.0 });
        assert!(large.atoms().len() > 2 * small.atoms().len());
    }

    #[test]
    fn sphere_atoms_lie_on_the_shell() {
        let s = Nanostructure::build(StructureKind::Sphere { radius: 1.5 });
        for a in s.atoms() {
            let r = (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt();
            assert!((r - 1.5).abs() < 1e-9, "r={r}");
        }
        assert!(
            (s.diameter() - 3.0).abs() < 0.2,
            "diameter {}",
            s.diameter()
        );
    }

    #[test]
    fn torus_atoms_respect_both_radii() {
        let t = Nanostructure::build(StructureKind::Toroid {
            major_r: 2.0,
            minor_r: 0.5,
        });
        for a in t.atoms() {
            let ring = (a[0] * a[0] + a[1] * a[1]).sqrt();
            let d = ((ring - 2.0).powi(2) + a[2] * a[2]).sqrt();
            assert!((d - 0.5).abs() < 1e-9, "distance to ring circle {d}");
        }
        assert_eq!(t.kind().aspect_ratio(), Some(4.0));
    }

    #[test]
    fn flake_is_planar_and_tube_has_length() {
        let f = Nanostructure::build(StructureKind::Flake { side: 2.0 });
        assert!(f.atoms().iter().all(|a| a[2] == 0.0));
        let t = Nanostructure::build(StructureKind::Tube {
            radius: 0.5,
            length: 5.0,
        });
        let zmin = t.atoms().iter().map(|a| a[2]).fold(f64::INFINITY, f64::min);
        let zmax = t
            .atoms()
            .iter()
            .map(|a| a[2])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((zmax - zmin - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_radius_panics() {
        let _ = Nanostructure::build(StructureKind::Sphere { radius: 0.0 });
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            StructureKind::Toroid {
                major_r: 1.0,
                minor_r: 0.4,
            },
            StructureKind::Tube {
                radius: 0.5,
                length: 3.0,
            },
            StructureKind::Sphere { radius: 1.0 },
            StructureKind::Flake { side: 2.0 },
        ];
        let labels: Vec<String> = kinds.iter().map(StructureKind::label).collect();
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
