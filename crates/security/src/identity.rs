//! Authenticated identities.

use std::fmt;

/// An authenticated principal.
///
/// The paper supports exactly two identity kinds — X.509 certificate
/// distinguished names and OpenID identifiers — plus the implicit anonymous
/// client (browser users without credentials).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Identity {
    /// A certificate subject distinguished name, e.g. `CN=alice,O=iitp`.
    Certificate(String),
    /// An OpenID identifier, e.g. `https://openid.example/alice`.
    OpenId(String),
    /// No credentials presented.
    Anonymous,
}

impl Identity {
    /// Creates a certificate identity.
    pub fn certificate(dn: &str) -> Self {
        Identity::Certificate(dn.to_string())
    }

    /// Creates an OpenID identity.
    pub fn openid(id: &str) -> Self {
        Identity::OpenId(id.to_string())
    }

    /// Returns `true` for authenticated (non-anonymous) identities.
    pub fn is_authenticated(&self) -> bool {
        !matches!(self, Identity::Anonymous)
    }

    /// A single-string wire encoding (`cert:…`, `openid:…`, `anonymous`).
    pub fn encode(&self) -> String {
        match self {
            Identity::Certificate(dn) => format!("cert:{dn}"),
            Identity::OpenId(id) => format!("openid:{id}"),
            Identity::Anonymous => "anonymous".to_string(),
        }
    }

    /// Parses the [`Identity::encode`] form; unknown prefixes are anonymous.
    pub fn decode(s: &str) -> Identity {
        if let Some(dn) = s.strip_prefix("cert:") {
            Identity::Certificate(dn.to_string())
        } else if let Some(id) = s.strip_prefix("openid:") {
            Identity::OpenId(id.to_string())
        } else {
            Identity::Anonymous
        }
    }
}

impl fmt::Display for Identity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for id in [
            Identity::certificate("CN=alice,O=iitp"),
            Identity::openid("https://id.example/bob"),
            Identity::Anonymous,
        ] {
            assert_eq!(Identity::decode(&id.encode()), id);
        }
    }

    #[test]
    fn unknown_prefixes_decode_to_anonymous() {
        assert_eq!(Identity::decode("kerberos:x"), Identity::Anonymous);
        assert_eq!(Identity::decode(""), Identity::Anonymous);
    }

    #[test]
    fn authentication_flag() {
        assert!(Identity::certificate("CN=x").is_authenticated());
        assert!(Identity::openid("x").is_authenticated());
        assert!(!Identity::Anonymous.is_authenticated());
    }
}
