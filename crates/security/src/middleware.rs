//! HTTP authentication middleware and client-side credential helpers.
//!
//! Wire protocol (the simulated counterpart of SSL client certificates and
//! Loginza logins):
//!
//! * `X-Client-Certificate: <compact-json cert>` — certificate auth,
//! * `Authorization: OpenId <token>` — OpenID auth,
//! * `X-Proxy-Certificate: <cert>` + `X-On-Behalf-Of: <identity>` —
//!   delegated calls by trusted services.
//!
//! After successful authentication the middleware annotates the request with
//! [`IDENTITY_HEADER`] (and [`PROXY_HEADER`] for delegated calls); the
//! container's per-service policies read those annotations. Client-supplied
//! values of the annotation headers are always stripped first.

use mathcloud_http::{Request, Response};

use crate::cert::{Certificate, CertificateAuthority, OpenIdProvider, OpenIdToken};
use crate::identity::Identity;

/// Header carrying the authenticated identity, set by the middleware.
pub const IDENTITY_HEADER: &str = "x-mathcloud-identity";

/// Header carrying the authenticated proxy certificate DN for delegated
/// calls, set by the middleware.
pub const PROXY_HEADER: &str = "x-mathcloud-proxy-dn";

/// Client-side: request header for certificate authentication.
pub const CLIENT_CERT_HEADER: &str = "X-Client-Certificate";

/// Client-side: request header for a proxy (service) certificate.
pub const PROXY_CERT_HEADER: &str = "X-Proxy-Certificate";

/// Client-side: request header naming the delegated user.
pub const ON_BEHALF_OF_HEADER: &str = "X-On-Behalf-Of";

/// Authentication configuration for a container.
///
/// # Examples
///
/// ```
/// use mathcloud_http::{Request, Method};
/// use mathcloud_security::{AuthConfig, CertificateAuthority, Identity, IDENTITY_HEADER};
///
/// let ca = CertificateAuthority::new("ca");
/// let auth = AuthConfig::new(ca.clone());
/// let cert = ca.issue("CN=alice", 600);
///
/// let mut req = Request::new(Method::Get, "/services");
/// req.headers.set("X-Client-Certificate", &cert.encode());
/// assert!(auth.authenticate(&mut req).is_none(), "no short-circuit response");
/// assert_eq!(req.headers.get(IDENTITY_HEADER), Some("cert:CN=alice"));
/// ```
#[derive(Debug, Clone)]
pub struct AuthConfig {
    ca: CertificateAuthority,
    providers: Vec<OpenIdProvider>,
    require_authentication: bool,
}

impl AuthConfig {
    /// Creates a configuration trusting one certificate authority and no
    /// OpenID providers; anonymous requests are admitted (per-service
    /// policies may still reject them).
    pub fn new(ca: CertificateAuthority) -> Self {
        AuthConfig {
            ca,
            providers: Vec::new(),
            require_authentication: false,
        }
    }

    /// Trusts an OpenID provider (builder style).
    pub fn with_provider(mut self, provider: OpenIdProvider) -> Self {
        self.providers.push(provider);
        self
    }

    /// Rejects anonymous requests outright (builder style).
    pub fn require_authentication(mut self) -> Self {
        self.require_authentication = true;
        self
    }

    /// Authenticates a request in place.
    ///
    /// Returns `Some(401 response)` when presented credentials are invalid
    /// (or missing while required); otherwise annotates the request and
    /// returns `None`.
    pub fn authenticate(&self, req: &mut Request) -> Option<Response> {
        // Never trust client-supplied annotations.
        req.headers.remove(IDENTITY_HEADER);
        req.headers.remove(PROXY_HEADER);

        let identity = match self.extract_identity(req) {
            Ok(id) => id,
            Err(reason) => return Some(Response::error(401, &reason)),
        };

        // Delegation: an authenticated *certificate* principal may present a
        // proxy certificate asserting it acts for another identity.
        if let Some(proxy_encoded) = req.headers.get(PROXY_CERT_HEADER).map(String::from) {
            let proxy_cert = match Certificate::decode(&proxy_encoded) {
                Ok(c) => c,
                Err(e) => {
                    return Some(Response::error(401, &format!("bad proxy certificate: {e}")))
                }
            };
            if let Err(e) = self.ca.verify(&proxy_cert) {
                return Some(Response::error(
                    401,
                    &format!("proxy certificate rejected: {e}"),
                ));
            }
            let user = req
                .headers
                .get(ON_BEHALF_OF_HEADER)
                .map(Identity::decode)
                .unwrap_or(Identity::Anonymous);
            req.headers.set(PROXY_HEADER, &proxy_cert.subject);
            req.headers.set(IDENTITY_HEADER, &user.encode());
            return None;
        }

        if self.require_authentication && !identity.is_authenticated() {
            return Some(Response::error(401, "authentication required"));
        }
        req.headers.set(IDENTITY_HEADER, &identity.encode());
        None
    }

    fn extract_identity(&self, req: &Request) -> Result<Identity, String> {
        if let Some(encoded) = req.headers.get(CLIENT_CERT_HEADER) {
            let cert = Certificate::decode(encoded).map_err(|e| format!("bad certificate: {e}"))?;
            self.ca
                .verify(&cert)
                .map_err(|e| format!("certificate rejected: {e}"))?;
            return Ok(Identity::Certificate(cert.subject));
        }
        if let Some(auth) = req.headers.get("authorization") {
            let token_text = auth
                .strip_prefix("OpenId ")
                .ok_or_else(|| "unsupported authorization scheme".to_string())?;
            let token = OpenIdToken::decode(token_text).map_err(|e| format!("bad token: {e}"))?;
            let provider = self
                .providers
                .iter()
                .find(|p| p.name() == token.provider)
                .ok_or_else(|| format!("unknown identity provider {:?}", token.provider))?;
            provider
                .verify(&token)
                .map_err(|e| format!("token rejected: {e}"))?;
            return Ok(Identity::OpenId(token.identifier));
        }
        Ok(Identity::Anonymous)
    }

    /// Reads the authenticated identity annotation from a request.
    pub fn identity_of(req: &Request) -> Identity {
        req.headers
            .get(IDENTITY_HEADER)
            .map(Identity::decode)
            .unwrap_or(Identity::Anonymous)
    }

    /// Reads the proxy annotation (DN of the delegating service), if any.
    pub fn proxy_of(req: &Request) -> Option<String> {
        req.headers.get(PROXY_HEADER).map(String::from)
    }
}

/// Client helper: attaches certificate credentials to a request.
pub fn with_certificate(req: Request, cert: &Certificate) -> Request {
    req.with_header(CLIENT_CERT_HEADER, &cert.encode())
}

/// Client helper: attaches OpenID credentials to a request.
pub fn with_openid(req: Request, token: &OpenIdToken) -> Request {
    req.with_header("Authorization", &format!("OpenId {}", token.encode()))
}

/// Client helper: marks a request as a delegated call.
pub fn with_delegation(req: Request, service_cert: &Certificate, user: &Identity) -> Request {
    req.with_header(PROXY_CERT_HEADER, &service_cert.encode())
        .with_header(ON_BEHALF_OF_HEADER, &user.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathcloud_http::Method;

    fn auth() -> (AuthConfig, CertificateAuthority, OpenIdProvider) {
        let ca = CertificateAuthority::new("ca");
        let provider = OpenIdProvider::new("google-sim");
        let cfg = AuthConfig::new(ca.clone()).with_provider(provider.clone());
        (cfg, ca, provider)
    }

    #[test]
    fn anonymous_allowed_by_default_and_rejected_when_required() {
        let (cfg, _, _) = auth();
        let mut req = Request::new(Method::Get, "/");
        assert!(cfg.authenticate(&mut req).is_none());
        assert_eq!(AuthConfig::identity_of(&req), Identity::Anonymous);

        let strict = cfg.require_authentication();
        let mut req = Request::new(Method::Get, "/");
        let resp = strict.authenticate(&mut req).expect("401");
        assert_eq!(resp.status.as_u16(), 401);
    }

    #[test]
    fn certificate_authentication() {
        let (cfg, ca, _) = auth();
        let cert = ca.issue("CN=alice", 600);
        let mut req = with_certificate(Request::new(Method::Get, "/"), &cert);
        assert!(cfg.authenticate(&mut req).is_none());
        assert_eq!(
            AuthConfig::identity_of(&req),
            Identity::certificate("CN=alice")
        );
    }

    #[test]
    fn forged_certificate_is_rejected() {
        let (cfg, ca, _) = auth();
        let mut cert = ca.issue("CN=alice", 600);
        cert.subject = "CN=root".into();
        let mut req = with_certificate(Request::new(Method::Get, "/"), &cert);
        let resp = cfg.authenticate(&mut req).expect("401");
        assert_eq!(resp.status.as_u16(), 401);
    }

    #[test]
    fn openid_authentication() {
        let (cfg, _, provider) = auth();
        let token = provider.login("https://id/bob", 600);
        let mut req = with_openid(Request::new(Method::Get, "/"), &token);
        assert!(cfg.authenticate(&mut req).is_none());
        assert_eq!(
            AuthConfig::identity_of(&req),
            Identity::openid("https://id/bob")
        );
    }

    #[test]
    fn unknown_provider_and_scheme_are_rejected() {
        let (cfg, _, _) = auth();
        let other = OpenIdProvider::new("unknown");
        let token = other.login("https://id/bob", 600);
        let mut req = with_openid(Request::new(Method::Get, "/"), &token);
        assert!(cfg.authenticate(&mut req).is_some());

        let mut req = Request::new(Method::Get, "/").with_header("Authorization", "Bearer x");
        assert!(cfg.authenticate(&mut req).is_some());
    }

    #[test]
    fn spoofed_identity_header_is_stripped() {
        let (cfg, _, _) = auth();
        let mut req = Request::new(Method::Get, "/").with_header(IDENTITY_HEADER, "cert:CN=root");
        assert!(cfg.authenticate(&mut req).is_none());
        assert_eq!(AuthConfig::identity_of(&req), Identity::Anonymous);
    }

    #[test]
    fn delegation_annotates_proxy_and_user() {
        let (cfg, ca, _) = auth();
        let service_cert = ca.issue("CN=wms", 600);
        let user = Identity::openid("https://id/alice");
        let mut req = with_delegation(Request::new(Method::Post, "/"), &service_cert, &user);
        assert!(cfg.authenticate(&mut req).is_none());
        assert_eq!(AuthConfig::identity_of(&req), user);
        assert_eq!(AuthConfig::proxy_of(&req).as_deref(), Some("CN=wms"));
    }

    #[test]
    fn untrusted_proxy_certificate_is_rejected() {
        let (cfg, _, _) = auth();
        let rogue_ca = CertificateAuthority::with_secret("ca", b"other");
        let service_cert = rogue_ca.issue("CN=wms", 600);
        let user = Identity::openid("https://id/alice");
        let mut req = with_delegation(Request::new(Method::Post, "/"), &service_cert, &user);
        assert_eq!(cfg.authenticate(&mut req).unwrap().status.as_u16(), 401);
    }
}
