//! Allow/deny-list authorization and proxy delegation.

use crate::identity::Identity;

/// The outcome of an authorization check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDecision {
    /// Access granted.
    Allowed,
    /// Identity is on the deny list.
    Denied,
    /// Identity is not on a non-empty allow list.
    NotListed,
}

impl AccessDecision {
    /// Returns `true` when the request may proceed.
    pub fn is_allowed(self) -> bool {
        matches!(self, AccessDecision::Allowed)
    }
}

/// Per-service access policy (§3.4 of the paper).
///
/// Semantics:
/// * identities on the **deny** list are always rejected,
/// * if the **allow** list is empty the service is public (everyone else may
///   call it),
/// * otherwise the identity must appear on the allow list.
///
/// Delegation: a service certificate on the **proxy** list may invoke the
/// service *on behalf of* another identity; the effective identity checked
/// against allow/deny is the delegated user, and the proxy itself must be
/// trusted.
///
/// # Examples
///
/// ```
/// use mathcloud_security::{AccessPolicy, Identity};
///
/// let mut p = AccessPolicy::new();
/// p.allow(Identity::openid("https://id/alice"));
/// p.trust_proxy("CN=workflow-service");
///
/// // Direct call by alice: allowed.
/// assert!(p.decide(&Identity::openid("https://id/alice")).is_allowed());
/// // Workflow service calling on behalf of alice: allowed.
/// assert!(p
///     .decide_proxied("CN=workflow-service", &Identity::openid("https://id/alice"))
///     .is_allowed());
/// // Untrusted proxy: rejected even for an allowed user.
/// assert!(!p
///     .decide_proxied("CN=rogue", &Identity::openid("https://id/alice"))
///     .is_allowed());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessPolicy {
    allow: Vec<Identity>,
    deny: Vec<Identity>,
    proxies: Vec<String>,
}

impl AccessPolicy {
    /// A public policy (empty lists).
    pub fn new() -> Self {
        AccessPolicy::default()
    }

    /// Adds an identity to the allow list.
    pub fn allow(&mut self, id: Identity) -> &mut Self {
        self.allow.push(id);
        self
    }

    /// Adds an identity to the deny list.
    pub fn deny(&mut self, id: Identity) -> &mut Self {
        self.deny.push(id);
        self
    }

    /// Trusts a service certificate DN to act on behalf of users.
    pub fn trust_proxy(&mut self, service_dn: &str) -> &mut Self {
        self.proxies.push(service_dn.to_string());
        self
    }

    /// Returns `true` when no allow entries exist (public service).
    pub fn is_public(&self) -> bool {
        self.allow.is_empty()
    }

    /// Decides whether `identity` may access the service directly.
    pub fn decide(&self, identity: &Identity) -> AccessDecision {
        if self.deny.contains(identity) {
            return AccessDecision::Denied;
        }
        if self.allow.is_empty() || self.allow.contains(identity) {
            AccessDecision::Allowed
        } else {
            AccessDecision::NotListed
        }
    }

    /// Decides a delegated call: `proxy_dn` (an authenticated service
    /// certificate) acts on behalf of `user`.
    pub fn decide_proxied(&self, proxy_dn: &str, user: &Identity) -> AccessDecision {
        if !self.proxies.iter().any(|p| p == proxy_dn) {
            return AccessDecision::NotListed;
        }
        self.decide(user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alice() -> Identity {
        Identity::openid("https://id/alice")
    }

    fn bob() -> Identity {
        Identity::certificate("CN=bob")
    }

    #[test]
    fn empty_policy_is_public() {
        let p = AccessPolicy::new();
        assert!(p.is_public());
        assert!(p.decide(&alice()).is_allowed());
        assert!(p.decide(&Identity::Anonymous).is_allowed());
    }

    #[test]
    fn deny_beats_allow() {
        let mut p = AccessPolicy::new();
        p.allow(alice()).deny(alice());
        assert_eq!(p.decide(&alice()), AccessDecision::Denied);
    }

    #[test]
    fn nonempty_allow_list_closes_the_service() {
        let mut p = AccessPolicy::new();
        p.allow(alice());
        assert!(p.decide(&alice()).is_allowed());
        assert_eq!(p.decide(&bob()), AccessDecision::NotListed);
        assert_eq!(p.decide(&Identity::Anonymous), AccessDecision::NotListed);
    }

    #[test]
    fn deny_on_public_service() {
        let mut p = AccessPolicy::new();
        p.deny(bob());
        assert!(p.decide(&alice()).is_allowed());
        assert_eq!(p.decide(&bob()), AccessDecision::Denied);
    }

    #[test]
    fn proxying_requires_trust_and_checks_the_user() {
        let mut p = AccessPolicy::new();
        p.allow(alice()).deny(bob()).trust_proxy("CN=wms");
        assert!(p.decide_proxied("CN=wms", &alice()).is_allowed());
        assert_eq!(p.decide_proxied("CN=wms", &bob()), AccessDecision::Denied);
        assert_eq!(
            p.decide_proxied("CN=unknown", &alice()),
            AccessDecision::NotListed
        );
    }
}
