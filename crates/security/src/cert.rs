//! Simulated certificates, certificate authorities and OpenID providers.

use std::error::Error;
use std::fmt;
use std::time::{SystemTime, UNIX_EPOCH};

use mathcloud_json::value::Object;
use mathcloud_json::Value;

use crate::sha256::{hmac, to_hex, verify_mac};

/// Seconds since the Unix epoch.
fn now_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Errors from credential verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// The signature does not verify under the authority's secret.
    BadSignature,
    /// The credential is outside its validity window.
    Expired,
    /// The credential names a different issuer than the verifying authority.
    WrongIssuer {
        /// Issuer named in the credential.
        expected: String,
        /// The verifying authority.
        got: String,
    },
    /// The credential document is structurally invalid.
    Malformed(String),
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::BadSignature => write!(f, "signature verification failed"),
            CertificateError::Expired => write!(f, "credential expired or not yet valid"),
            CertificateError::WrongIssuer { expected, got } => {
                write!(
                    f,
                    "wrong issuer: credential names {expected:?}, verifier is {got:?}"
                )
            }
            CertificateError::Malformed(m) => write!(f, "malformed credential: {m}"),
        }
    }
}

impl Error for CertificateError {}

/// A simulated X.509-style certificate.
///
/// The signed payload binds subject, issuer and validity window with
/// HMAC-SHA-256 under the issuing CA's secret — structurally the same trust
/// statement as an X.509 signature, minus the asymmetric crypto (see
/// DESIGN.md substitutions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Subject distinguished name.
    pub subject: String,
    /// Issuing authority name.
    pub issuer: String,
    /// Validity start (Unix seconds).
    pub not_before: u64,
    /// Validity end (Unix seconds).
    pub not_after: u64,
    /// Hex HMAC over the other fields.
    pub signature: String,
}

impl Certificate {
    fn signed_payload(subject: &str, issuer: &str, not_before: u64, not_after: u64) -> String {
        format!("cert|{subject}|{issuer}|{not_before}|{not_after}")
    }

    /// Serializes to the JSON form carried in HTTP headers.
    pub fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("subject".into(), Value::from(self.subject.as_str()));
        o.insert("issuer".into(), Value::from(self.issuer.as_str()));
        o.insert("not_before".into(), Value::from(self.not_before as i64));
        o.insert("not_after".into(), Value::from(self.not_after as i64));
        o.insert("signature".into(), Value::from(self.signature.as_str()));
        Value::Object(o)
    }

    /// Parses the JSON form.
    ///
    /// # Errors
    ///
    /// [`CertificateError::Malformed`] when fields are missing.
    pub fn from_value(v: &Value) -> Result<Self, CertificateError> {
        let field = |name: &str| {
            v.str_field(name)
                .map(String::from)
                .ok_or_else(|| CertificateError::Malformed(format!("missing {name}")))
        };
        let int_field = |name: &str| {
            v.int_field(name)
                .and_then(|n| u64::try_from(n).ok())
                .ok_or_else(|| CertificateError::Malformed(format!("missing {name}")))
        };
        Ok(Certificate {
            subject: field("subject")?,
            issuer: field("issuer")?,
            not_before: int_field("not_before")?,
            not_after: int_field("not_after")?,
            signature: field("signature")?,
        })
    }

    /// The compact single-header encoding (compact JSON).
    pub fn encode(&self) -> String {
        self.to_value().to_string()
    }

    /// Parses the [`Certificate::encode`] form.
    ///
    /// # Errors
    ///
    /// [`CertificateError::Malformed`] on bad JSON or missing fields.
    pub fn decode(s: &str) -> Result<Self, CertificateError> {
        let v = mathcloud_json::parse(s).map_err(|e| CertificateError::Malformed(e.to_string()))?;
        Certificate::from_value(&v)
    }
}

/// A certificate authority: issues and verifies [`Certificate`]s.
///
/// # Examples
///
/// ```
/// use mathcloud_security::CertificateAuthority;
///
/// let ca = CertificateAuthority::new("mathcloud-ca");
/// let cert = ca.issue("CN=everest-container", 86400);
/// assert!(ca.verify(&cert).is_ok());
///
/// let other = CertificateAuthority::new("rogue-ca");
/// assert!(other.verify(&cert).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    name: String,
    secret: Vec<u8>,
}

impl CertificateAuthority {
    /// Creates an authority with a secret derived from its name.
    ///
    /// Deterministic secrets keep tests and examples reproducible; use
    /// [`CertificateAuthority::with_secret`] for per-deployment secrets.
    pub fn new(name: &str) -> Self {
        let secret = crate::sha256::digest(format!("ca-secret:{name}").as_bytes()).to_vec();
        CertificateAuthority {
            name: name.to_string(),
            secret,
        }
    }

    /// Creates an authority with an explicit secret.
    pub fn with_secret(name: &str, secret: &[u8]) -> Self {
        CertificateAuthority {
            name: name.to_string(),
            secret: secret.to_vec(),
        }
    }

    /// The authority name, used as the issuer DN.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Issues a certificate for `subject`, valid for `ttl_secs` from now.
    pub fn issue(&self, subject: &str, ttl_secs: u64) -> Certificate {
        let not_before = now_secs().saturating_sub(60); // tolerate clock skew
        let not_after = now_secs() + ttl_secs;
        self.issue_with_validity(subject, not_before, not_after)
    }

    /// Issues a certificate with an explicit validity window.
    pub fn issue_with_validity(
        &self,
        subject: &str,
        not_before: u64,
        not_after: u64,
    ) -> Certificate {
        let payload = Certificate::signed_payload(subject, &self.name, not_before, not_after);
        let signature = to_hex(&hmac(&self.secret, payload.as_bytes()));
        Certificate {
            subject: subject.to_string(),
            issuer: self.name.clone(),
            not_before,
            not_after,
            signature,
        }
    }

    /// Verifies issuer, validity window and signature.
    ///
    /// # Errors
    ///
    /// The first failing check is reported.
    pub fn verify(&self, cert: &Certificate) -> Result<(), CertificateError> {
        if cert.issuer != self.name {
            return Err(CertificateError::WrongIssuer {
                expected: cert.issuer.clone(),
                got: self.name.clone(),
            });
        }
        let now = now_secs();
        if now < cert.not_before || now > cert.not_after {
            return Err(CertificateError::Expired);
        }
        let payload = Certificate::signed_payload(
            &cert.subject,
            &cert.issuer,
            cert.not_before,
            cert.not_after,
        );
        let expected = hmac(&self.secret, payload.as_bytes());
        if verify_mac(&expected, &cert.signature) {
            Ok(())
        } else {
            Err(CertificateError::BadSignature)
        }
    }
}

/// A signed OpenID-style token, the stand-in for Loginza-brokered logins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenIdToken {
    /// The user's OpenID identifier.
    pub identifier: String,
    /// The issuing provider name.
    pub provider: String,
    /// Expiry (Unix seconds).
    pub expires: u64,
    /// Hex HMAC over the other fields.
    pub signature: String,
}

impl OpenIdToken {
    fn signed_payload(identifier: &str, provider: &str, expires: u64) -> String {
        format!("openid|{identifier}|{provider}|{expires}")
    }

    /// Compact encoding carried in the `Authorization` header.
    pub fn encode(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.identifier, self.provider, self.expires, self.signature
        )
    }

    /// Parses the [`OpenIdToken::encode`] form.
    ///
    /// # Errors
    ///
    /// [`CertificateError::Malformed`] on the wrong number of fields.
    pub fn decode(s: &str) -> Result<Self, CertificateError> {
        let parts: Vec<&str> = s.split('|').collect();
        if parts.len() != 4 {
            return Err(CertificateError::Malformed(
                "openid token needs 4 fields".into(),
            ));
        }
        let expires: u64 = parts[2]
            .parse()
            .map_err(|_| CertificateError::Malformed("bad expiry".into()))?;
        Ok(OpenIdToken {
            identifier: parts[0].to_string(),
            provider: parts[1].to_string(),
            expires,
            signature: parts[3].to_string(),
        })
    }
}

/// An OpenID identity provider (Google, Facebook, … in the paper; simulated
/// here), playing the same role as [`CertificateAuthority`] for tokens.
#[derive(Debug, Clone)]
pub struct OpenIdProvider {
    name: String,
    secret: Vec<u8>,
}

impl OpenIdProvider {
    /// Creates a provider with a secret derived from its name.
    pub fn new(name: &str) -> Self {
        let secret = crate::sha256::digest(format!("openid-secret:{name}").as_bytes()).to_vec();
        OpenIdProvider {
            name: name.to_string(),
            secret,
        }
    }

    /// The provider name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Issues a token for `identifier`, valid for `ttl_secs`.
    pub fn login(&self, identifier: &str, ttl_secs: u64) -> OpenIdToken {
        let expires = now_secs() + ttl_secs;
        let payload = OpenIdToken::signed_payload(identifier, &self.name, expires);
        OpenIdToken {
            identifier: identifier.to_string(),
            provider: self.name.clone(),
            expires,
            signature: to_hex(&hmac(&self.secret, payload.as_bytes())),
        }
    }

    /// Verifies provider, expiry and signature.
    ///
    /// # Errors
    ///
    /// The first failing check is reported.
    pub fn verify(&self, token: &OpenIdToken) -> Result<(), CertificateError> {
        if token.provider != self.name {
            return Err(CertificateError::WrongIssuer {
                expected: token.provider.clone(),
                got: self.name.clone(),
            });
        }
        if now_secs() > token.expires {
            return Err(CertificateError::Expired);
        }
        let payload =
            OpenIdToken::signed_payload(&token.identifier, &token.provider, token.expires);
        let expected = hmac(&self.secret, payload.as_bytes());
        if verify_mac(&expected, &token.signature) {
            Ok(())
        } else {
            Err(CertificateError::BadSignature)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_and_verify() {
        let ca = CertificateAuthority::new("ca");
        let cert = ca.issue("CN=alice", 600);
        assert!(ca.verify(&cert).is_ok());
    }

    #[test]
    fn tampered_subject_fails() {
        let ca = CertificateAuthority::new("ca");
        let mut cert = ca.issue("CN=alice", 600);
        cert.subject = "CN=mallory".into();
        assert_eq!(
            ca.verify(&cert).unwrap_err(),
            CertificateError::BadSignature
        );
    }

    #[test]
    fn expired_certificate_fails() {
        let ca = CertificateAuthority::new("ca");
        let cert = ca.issue_with_validity("CN=alice", 0, 1);
        assert_eq!(ca.verify(&cert).unwrap_err(), CertificateError::Expired);
        let cert = ca.issue_with_validity("CN=alice", u64::MAX - 1, u64::MAX);
        assert_eq!(ca.verify(&cert).unwrap_err(), CertificateError::Expired);
    }

    #[test]
    fn wrong_authority_fails() {
        let ca = CertificateAuthority::new("ca");
        let cert = ca.issue("CN=alice", 600);
        let rogue = CertificateAuthority::with_secret("ca", b"different secret");
        assert_eq!(
            rogue.verify(&cert).unwrap_err(),
            CertificateError::BadSignature
        );
        let other_name = CertificateAuthority::new("other");
        assert!(matches!(
            other_name.verify(&cert).unwrap_err(),
            CertificateError::WrongIssuer { .. }
        ));
    }

    #[test]
    fn certificate_wire_round_trip() {
        let ca = CertificateAuthority::new("ca");
        let cert = ca.issue("CN=service,O=grid", 600);
        let decoded = Certificate::decode(&cert.encode()).unwrap();
        assert_eq!(decoded, cert);
        assert!(ca.verify(&decoded).is_ok());
        assert!(Certificate::decode("not json").is_err());
        assert!(Certificate::decode("{}").is_err());
    }

    #[test]
    fn openid_token_lifecycle() {
        let provider = OpenIdProvider::new("google-sim");
        let token = provider.login("https://id/alice", 600);
        assert!(provider.verify(&token).is_ok());
        let decoded = OpenIdToken::decode(&token.encode()).unwrap();
        assert_eq!(decoded, token);

        let mut forged = token.clone();
        forged.identifier = "https://id/mallory".into();
        assert_eq!(
            provider.verify(&forged).unwrap_err(),
            CertificateError::BadSignature
        );

        let other = OpenIdProvider::new("facebook-sim");
        assert!(matches!(
            other.verify(&token).unwrap_err(),
            CertificateError::WrongIssuer { .. }
        ));
        assert!(OpenIdToken::decode("a|b|c").is_err());
        assert!(OpenIdToken::decode("a|b|nan|d").is_err());
    }
}
