//! The MathCloud security mechanism (§3.4, Fig 3 of the paper).
//!
//! The paper's platform authenticates services with SSL server certificates
//! and clients with either X.509 client certificates or OpenID identities
//! (via the Loginza aggregator), authorizes with per-service allow/deny
//! lists, and supports a limited delegation scheme where trusted services may
//! act on behalf of users (proxy lists).
//!
//! This reproduction keeps the *logic* — two identity kinds, list-based
//! authorization, proxy delegation — on top of a **simulated PKI**:
//! certificates are JSON documents signed with HMAC-SHA-256 under a
//! CA-held secret (SHA-256 implemented in-repo, see [`sha256`]). It is a
//! faithful model of the trust relationships, not a hardened cryptosystem;
//! DESIGN.md records this substitution.
//!
//! # Examples
//!
//! ```
//! use mathcloud_security::{AccessPolicy, CertificateAuthority, Identity};
//!
//! let ca = CertificateAuthority::new("mathcloud-ca");
//! let cert = ca.issue("CN=alice", 3600);
//! assert!(ca.verify(&cert).is_ok());
//!
//! let mut policy = AccessPolicy::new();
//! policy.allow(Identity::certificate("CN=alice"));
//! assert!(policy.decide(&Identity::certificate("CN=alice")).is_allowed());
//! assert!(!policy.decide(&Identity::certificate("CN=mallory")).is_allowed());
//! ```

pub mod cert;
pub mod identity;
pub mod middleware;
pub mod policy;
pub mod sha256;

pub use cert::{Certificate, CertificateAuthority, CertificateError, OpenIdProvider, OpenIdToken};
pub use identity::Identity;
pub use middleware::{AuthConfig, IDENTITY_HEADER};
pub use policy::{AccessDecision, AccessPolicy};
