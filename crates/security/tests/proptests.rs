//! Randomized property tests for the security mechanism, driven by the
//! workspace's deterministic PRNG (offline, reproducible).

use mathcloud_security::cert::OpenIdToken;
use mathcloud_security::{
    AccessPolicy, Certificate, CertificateAuthority, Identity, OpenIdProvider,
};
use mathcloud_telemetry::XorShift64;

const CASES: usize = 200;

const DN_POOL: &[char] = &['A', 'Z', 'a', 'z', '0', '9', '=', ',', '.', ' ', '-'];
const ID_POOL: &[char] = &['a', 'z', '0', '9', ':', '/', '.', '_', '-'];

fn arb_identity(rng: &mut XorShift64) -> Identity {
    match rng.index(3) {
        0 => {
            let len = 1 + rng.index(24);
            let dn = rng.string_from(DN_POOL, len);
            Identity::certificate(&dn)
        }
        1 => {
            let len = 1 + rng.index(24);
            let id = rng.string_from(ID_POOL, len);
            Identity::openid(&id)
        }
        _ => Identity::Anonymous,
    }
}

/// Identity encoding round-trips for every identity.
#[test]
fn identity_round_trip() {
    let mut rng = XorShift64::new(0x1D);
    for case in 0..CASES {
        let id = arb_identity(&mut rng);
        assert_eq!(Identity::decode(&id.encode()), id, "case {case}");
    }
}

/// Certificates issued by a CA verify; any single-field tampering fails.
#[test]
fn certificates_bind_every_field() {
    const SUBJ: &[char] = &['A', 'Z', 'a', 'z', '0', '9', '=', ',', ' '];
    let mut rng = XorShift64::new(0xCA);
    let ca = CertificateAuthority::new("prop-ca");
    for case in 0..CASES {
        let len = 1 + rng.index(24);
        let subject = rng.string_from(SUBJ, len);
        let tamper = rng.index(3);
        let garbage = {
            let len = 1 + rng.index(12);
            rng.alnum_string(len.max(1)).to_lowercase() + "x"
        };
        let cert = ca.issue(&subject, 600);
        assert!(ca.verify(&cert).is_ok(), "case {case}");
        let mut bad = cert.clone();
        match tamper {
            0 => bad.subject = format!("{}{garbage}", bad.subject),
            1 => bad.not_after = bad.not_after.wrapping_add(1),
            _ => bad.not_before = bad.not_before.wrapping_sub(1),
        }
        assert!(
            ca.verify(&bad).is_err(),
            "case {case}: tampered field {tamper} accepted"
        );
    }
}

/// Certificate wire encoding round-trips (subjects may contain JSON
/// metacharacters).
#[test]
fn certificate_wire_round_trip() {
    let mut rng = XorShift64::new(0xC3);
    let ca = CertificateAuthority::new("prop-ca");
    for case in 0..CASES {
        let subject = loop {
            let s = rng.unicode_string(32);
            if !s.is_empty() {
                break s;
            }
        };
        let cert = ca.issue(&subject, 600);
        let decoded = Certificate::decode(&cert.encode()).unwrap();
        assert_eq!(&decoded, &cert, "case {case}");
        assert!(ca.verify(&decoded).is_ok(), "case {case}");
    }
}

/// Tokens from one provider never verify at another, regardless of names.
#[test]
fn providers_are_isolated() {
    const USER: &[char] = &['a', 'z', '0', '9', '/', ':'];
    let mut rng = XorShift64::new(0x0ED);
    let a = OpenIdProvider::new("provider-a");
    let b = OpenIdProvider::new("provider-b");
    for case in 0..CASES {
        let len = 1 + rng.index(20);
        let user = rng.string_from(USER, len);
        let token = a.login(&user, 600);
        assert!(a.verify(&token).is_ok(), "case {case}");
        assert!(b.verify(&token).is_err(), "case {case}");
        let decoded = OpenIdToken::decode(&token.encode()).unwrap();
        assert_eq!(decoded, token, "case {case}");
    }
}

/// Policy invariants: deny always wins; empty allow admits everyone not
/// denied; non-empty allow admits exactly its members (minus denied).
#[test]
fn policy_semantics() {
    let mut rng = XorShift64::new(0x90C);
    for case in 0..CASES {
        let allow: Vec<Identity> = (0..rng.index(4)).map(|_| arb_identity(&mut rng)).collect();
        let deny: Vec<Identity> = (0..rng.index(4)).map(|_| arb_identity(&mut rng)).collect();
        // Bias the probe towards listed identities so all branches are hit.
        let probe = if !deny.is_empty() && rng.chance(0.3) {
            rng.pick(&deny).clone()
        } else if !allow.is_empty() && rng.chance(0.4) {
            rng.pick(&allow).clone()
        } else {
            arb_identity(&mut rng)
        };
        let mut p = AccessPolicy::new();
        for id in &allow {
            p.allow(id.clone());
        }
        for id in &deny {
            p.deny(id.clone());
        }
        let decision = p.decide(&probe);
        if deny.contains(&probe) {
            assert!(
                !decision.is_allowed(),
                "case {case}: denied identity admitted"
            );
        } else if allow.is_empty() || allow.contains(&probe) {
            assert!(decision.is_allowed(), "case {case}");
        } else {
            assert!(!decision.is_allowed(), "case {case}");
        }
    }
}
