//! Property-based tests for the security mechanism.

use mathcloud_security::cert::OpenIdToken;
use mathcloud_security::{AccessPolicy, Certificate, CertificateAuthority, Identity, OpenIdProvider};
use proptest::prelude::*;

fn arb_identity() -> impl Strategy<Value = Identity> {
    prop_oneof![
        "[A-Za-z0-9=,. -]{1,24}".prop_map(|dn| Identity::certificate(&dn)),
        "[a-z0-9:/._-]{1,24}".prop_map(|id| Identity::openid(&id)),
        Just(Identity::Anonymous),
    ]
}

proptest! {
    /// Identity encoding round-trips for every identity.
    #[test]
    fn identity_round_trip(id in arb_identity()) {
        prop_assert_eq!(Identity::decode(&id.encode()), id);
    }

    /// Certificates issued by a CA verify; any single-field tampering fails.
    #[test]
    fn certificates_bind_every_field(
        subject in "[A-Za-z0-9=, ]{1,24}",
        tamper in 0usize..3,
        garbage in "[a-z0-9]{1,12}",
    ) {
        let ca = CertificateAuthority::new("prop-ca");
        let cert = ca.issue(&subject, 600);
        prop_assert!(ca.verify(&cert).is_ok());
        let mut bad = cert.clone();
        match tamper {
            0 => bad.subject = format!("{}{garbage}", bad.subject),
            1 => bad.not_after = bad.not_after.wrapping_add(1),
            _ => bad.not_before = bad.not_before.wrapping_sub(1),
        }
        prop_assert!(ca.verify(&bad).is_err(), "tampered field {tamper} accepted");
    }

    /// Certificate wire encoding round-trips (subjects may contain JSON
    /// metacharacters).
    #[test]
    fn certificate_wire_round_trip(subject in "\\PC{1,32}") {
        let ca = CertificateAuthority::new("prop-ca");
        let cert = ca.issue(&subject, 600);
        let decoded = Certificate::decode(&cert.encode()).unwrap();
        prop_assert_eq!(&decoded, &cert);
        prop_assert!(ca.verify(&decoded).is_ok());
    }

    /// Tokens from one provider never verify at another, regardless of names.
    #[test]
    fn providers_are_isolated(user in "[a-z0-9/:]{1,20}") {
        let a = OpenIdProvider::new("provider-a");
        let b = OpenIdProvider::new("provider-b");
        let token = a.login(&user, 600);
        prop_assert!(a.verify(&token).is_ok());
        prop_assert!(b.verify(&token).is_err());
        let decoded = OpenIdToken::decode(&token.encode()).unwrap();
        prop_assert_eq!(decoded, token);
    }

    /// Policy invariants: deny always wins; empty allow admits everyone not
    /// denied; non-empty allow admits exactly its members (minus denied).
    #[test]
    fn policy_semantics(
        allow in prop::collection::vec(arb_identity(), 0..4),
        deny in prop::collection::vec(arb_identity(), 0..4),
        probe in arb_identity(),
    ) {
        let mut p = AccessPolicy::new();
        for id in &allow { p.allow(id.clone()); }
        for id in &deny { p.deny(id.clone()); }
        let decision = p.decide(&probe);
        if deny.contains(&probe) {
            prop_assert!(!decision.is_allowed(), "denied identity admitted");
        } else if allow.is_empty() || allow.contains(&probe) {
            prop_assert!(decision.is_allowed());
        } else {
            prop_assert!(!decision.is_allowed());
        }
    }
}
