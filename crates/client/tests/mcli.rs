//! End-to-end tests of the `mcli` command-line client (§3.5 of the paper)
//! against a live container, invoked as a real subprocess.

use std::process::Command;
use std::time::Duration;

use mathcloud_core::{Parameter, ServiceDescription};
use mathcloud_everest::adapter::NativeAdapter;
use mathcloud_everest::Everest;
use mathcloud_json::{json, Schema, Value};

fn server() -> (mathcloud_http::Server, String) {
    let e = Everest::new("cli-demo");
    e.deploy(
        ServiceDescription::new("sum", "adds two integers")
            .input(Parameter::new("a", Schema::integer()))
            .input(Parameter::new("b", Schema::integer()))
            .output(Parameter::new("total", Schema::integer())),
        NativeAdapter::from_fn(|inputs, _| {
            let a = inputs.get("a").and_then(Value::as_i64).unwrap_or(0);
            let b = inputs.get("b").and_then(Value::as_i64).unwrap_or(0);
            Ok([("total".to_string(), json!(a + b))].into_iter().collect())
        }),
    );
    e.deploy(
        ServiceDescription::new("slow", "cancellable sleeper"),
        NativeAdapter::from_fn(|_, ctx| {
            while !ctx.is_cancelled() {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err("cancelled".into())
        }),
    );
    let s = mathcloud_everest::serve(e, "127.0.0.1:0", None).unwrap();
    let base = s.base_url();
    (s, base)
}

fn mcli(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcli"))
        .args(args)
        .output()
        .expect("mcli runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_and_describe() {
    let (_s, base) = server();
    let (ok, stdout, _) = mcli(&["list", &base]);
    assert!(ok);
    assert!(stdout.contains("sum\tadds two integers"), "{stdout}");

    let (ok, stdout, _) = mcli(&["describe", &format!("{base}/services/sum")]);
    assert!(ok);
    assert!(stdout.contains("\"name\": \"sum\""), "{stdout}");
}

#[test]
fn call_parses_key_value_arguments_as_json() {
    let (_s, base) = server();
    let (ok, stdout, stderr) = mcli(&["call", &format!("{base}/services/sum"), "a=40", "b=2"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("\"state\": \"DONE\""), "{stdout}");
    assert!(stdout.contains("\"total\": 42"), "{stdout}");
}

#[test]
fn submit_status_cancel_flow() {
    let (_s, base) = server();
    let (ok, stdout, _) = mcli(&["submit", &format!("{base}/services/slow")]);
    assert!(ok);
    let job_url = stdout.trim().to_string();
    assert!(job_url.contains("/jobs/"), "{job_url}");

    let (ok, stdout, _) = mcli(&["status", &job_url]);
    assert!(ok);
    assert!(
        stdout.contains("WAITING") || stdout.contains("RUNNING"),
        "{stdout}"
    );

    let (ok, stdout, _) = mcli(&["cancel", &job_url]);
    assert!(ok);
    assert!(stdout.contains("cancelled"));
}

#[test]
fn errors_exit_nonzero_with_reasons() {
    let (_s, base) = server();
    // Unknown command.
    let (ok, _, stderr) = mcli(&["frobnicate", &base]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");
    // Bad key=value.
    let (ok, _, stderr) = mcli(&["call", &format!("{base}/services/sum"), "not-a-pair"]);
    assert!(!ok);
    assert!(stderr.contains("key=value"), "{stderr}");
    // Validation failure from the server.
    let (ok, _, stderr) = mcli(&["call", &format!("{base}/services/sum"), "a=\"text\""]);
    assert!(!ok);
    assert!(stderr.contains("400"), "{stderr}");
    // Dead server.
    let (ok, _, stderr) = mcli(&["list", "http://127.0.0.1:1"]);
    assert!(!ok);
    assert!(!stderr.is_empty());
}
