//! High-level client for MathCloud computational web services.
//!
//! The paper ships Java, Python and command-line clients (§3.5); this crate
//! is the Rust equivalent plus the `mcli` binary. Because services implement
//! the unified REST API, one client type talks to *any* MathCloud service:
//!
//! ```no_run
//! use mathcloud_client::ServiceClient;
//! use mathcloud_json::json;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let svc = ServiceClient::connect("http://localhost:9000/services/inverse")?;
//! println!("{}", svc.describe()?.description());
//! let job = svc.submit(&json!({"matrix": "2 0; 0 4"}))?;
//! let done = job.wait(Duration::from_secs(60))?;
//! println!("{}", done.outputs.unwrap().get("result").unwrap());
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use mathcloud_core::{JobRepresentation, JobState, ServiceDescription};
use mathcloud_http::sse;
use mathcloud_http::{Client, Method, Request, Url, MEMO_HIT_HEADER};
use mathcloud_json::Value;
use mathcloud_security::cert::{Certificate, OpenIdToken};
use mathcloud_security::middleware::CLIENT_CERT_HEADER;
use mathcloud_telemetry::rng::{splitmix64, XorShift64};
use mathcloud_telemetry::{next_request_id, REQUEST_ID_HEADER};

/// Connect timeout for event-stream subscriptions.
const SSE_CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// First pause of the poll fallback's backoff schedule.
const POLL_BASE: Duration = Duration::from_millis(10);

/// Backoff cap: bounds how stale a poll-mode client's view can get once a
/// job is clearly long-running.
const POLL_CAP: Duration = Duration::from_millis(200);

/// Capped exponential backoff with xorshift jitter for the poll fallback.
///
/// The doubling schedule keeps short jobs cheap to detect while long jobs
/// settle at one request per [`POLL_CAP`]; the jitter (uniform in
/// `[pause/2, pause]`) decorrelates the synchronized poll herds that fixed
/// intervals produce when many clients watch jobs submitted together.
#[derive(Debug)]
struct PollBackoff {
    pause: Duration,
    rng: XorShift64,
}

impl PollBackoff {
    fn new() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        let pid = u64::from(std::process::id());
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        PollBackoff {
            pause: POLL_BASE,
            rng: XorShift64::new(splitmix64(
                nanos ^ (pid << 32) ^ n.wrapping_mul(0xa076_1d64_78bd_642f),
            )),
        }
    }

    fn next_pause(&mut self) -> Duration {
        let span = self.pause.as_micros() as u64;
        let jittered = span / 2 + self.rng.next_u64() % (span / 2 + 1);
        self.pause = (self.pause * 2).min(POLL_CAP);
        Duration::from_micros(jittered)
    }
}

/// Errors from client operations.
#[derive(Debug)]
pub enum ServiceError {
    /// Transport-level failure.
    Transport(String),
    /// The server returned an HTTP error status.
    Http {
        /// The status code.
        status: u16,
        /// The error payload or body text.
        message: String,
    },
    /// The server returned a payload the client cannot interpret.
    Protocol(String),
    /// The job finished in FAILED or CANCELLED state.
    JobFailed(String),
    /// The job did not finish within the wait deadline.
    Timeout,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Transport(m) => write!(f, "transport error: {m}"),
            ServiceError::Http { status, message } => write!(f, "http {status}: {message}"),
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServiceError::JobFailed(m) => write!(f, "job failed: {m}"),
            ServiceError::Timeout => write!(f, "timed out waiting for the job"),
        }
    }
}

impl Error for ServiceError {}

fn http_error(resp: &mathcloud_http::Response) -> ServiceError {
    let message = resp
        .body_json()
        .ok()
        .and_then(|v| v.str_field("error").map(String::from))
        .unwrap_or_else(|| resp.body_string());
    ServiceError::Http {
        status: resp.status.as_u16(),
        message,
    }
}

/// A client bound to one computational web service.
#[derive(Debug, Clone)]
pub struct ServiceClient {
    client: Client,
    url: Url,
}

impl ServiceClient {
    /// Binds to a service URL (no network traffic yet).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] when the URL does not parse.
    pub fn connect(url: &str) -> Result<Self, ServiceError> {
        let url: Url = url
            .parse()
            .map_err(|e| ServiceError::Protocol(format!("{e}")))?;
        Ok(ServiceClient {
            client: Client::new(),
            url,
        })
    }

    /// Attaches certificate credentials to every request (builder style).
    pub fn with_certificate(mut self, cert: &Certificate) -> Self {
        self.client = self
            .client
            .with_default_header(CLIENT_CERT_HEADER, &cert.encode());
        self
    }

    /// Attaches OpenID credentials to every request (builder style).
    pub fn with_openid(mut self, token: &OpenIdToken) -> Self {
        self.client = self
            .client
            .with_default_header("Authorization", &format!("OpenId {}", token.encode()));
        self
    }

    /// Overrides the transport retry policy (builder style) — idempotent
    /// requests such as description fetches and job polls are retried with
    /// backoff; submissions never are.
    pub fn with_retry_policy(mut self, policy: mathcloud_http::RetryPolicy) -> Self {
        self.client = self.client.with_retry_policy(policy);
        self
    }

    /// Bounds TCP connects to `timeout` (builder style) so unroutable hosts
    /// fail within the budget rather than the OS default.
    pub fn with_connect_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.client = self.client.with_connect_timeout(timeout);
        self
    }

    /// The bound service URL.
    pub fn url(&self) -> &Url {
        &self.url
    }

    /// Fetches the service description (introspection).
    ///
    /// # Errors
    ///
    /// [`ServiceError`] on transport, HTTP or payload problems.
    pub fn describe(&self) -> Result<ServiceDescription, ServiceError> {
        let resp = self
            .client
            .get(&self.url.to_string())
            .map_err(|e| ServiceError::Transport(e.to_string()))?;
        if !resp.status.is_success() {
            return Err(http_error(&resp));
        }
        let doc = resp
            .body_json()
            .map_err(|e| ServiceError::Protocol(e.to_string()))?;
        ServiceDescription::from_value(&doc).map_err(|e| ServiceError::Protocol(e.to_string()))
    }

    /// Submits a request, returning a handle on the created job.
    ///
    /// A fresh `X-MC-Request-Id` is generated for the submission so the job
    /// can be correlated with server-side spans; use
    /// [`ServiceClient::submit_with_request_id`] to supply your own.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] on rejection (validation, authorization) or
    /// transport failure.
    pub fn submit(&self, inputs: &Value) -> Result<JobHandle, ServiceError> {
        self.submit_with_request_id(inputs, &next_request_id())
    }

    /// Submits a request under an explicit request id.
    ///
    /// The id is sent as `X-MC-Request-Id` and threads through the container,
    /// job manager and adapters; the handle surfaces the id the server
    /// actually adopted (the echo from the response, normally identical).
    ///
    /// # Errors
    ///
    /// See [`ServiceClient::submit`].
    pub fn submit_with_request_id(
        &self,
        inputs: &Value,
        request_id: &str,
    ) -> Result<JobHandle, ServiceError> {
        self.submit_inner(inputs, request_id, None)
    }

    /// Submits a request under an `Idempotency-Key`: the server creates at
    /// most one job per `(service, key)` — a retried or replayed submission
    /// (including after a container restart, since the key is journaled
    /// with the job) returns a handle on the *original* job. The transport
    /// layer therefore retries a keyed submission like an idempotent
    /// request.
    ///
    /// # Errors
    ///
    /// See [`ServiceClient::submit`].
    pub fn submit_idempotent(&self, inputs: &Value, key: &str) -> Result<JobHandle, ServiceError> {
        self.submit_inner(inputs, &next_request_id(), Some(key))
    }

    fn submit_inner(
        &self,
        inputs: &Value,
        request_id: &str,
        idem_key: Option<&str>,
    ) -> Result<JobHandle, ServiceError> {
        let mut req = Request::new(Method::Post, &self.url.target()).with_json(inputs);
        req.headers.set(REQUEST_ID_HEADER, request_id);
        if let Some(key) = idem_key {
            req.headers.set(mathcloud_http::IDEMPOTENCY_KEY_HEADER, key);
        }
        let resp = self
            .client
            .send(&self.url, req)
            .map_err(|e| ServiceError::Transport(e.to_string()))?;
        if !resp.status.is_success() {
            return Err(http_error(&resp));
        }
        let request_id = resp
            .headers
            .get(REQUEST_ID_HEADER)
            .unwrap_or(request_id)
            .to_string();
        let rep = JobRepresentation::from_value(
            &resp
                .body_json()
                .map_err(|e| ServiceError::Protocol(e.to_string()))?,
        )
        .map_err(ServiceError::Protocol)?;
        Ok(JobHandle {
            client: self.client.clone(),
            base: self.url.clone(),
            rep,
            request_id,
            memo_hit: resp.headers.get(MEMO_HIT_HEADER).is_some(),
        })
    }

    /// Submits and waits for completion in one call.
    ///
    /// The event-stream subscription is opened *before* the submission, so a
    /// job's terminal `job.*` event cannot slip past between the submit
    /// response and a later subscription — the full lifecycle is observed by
    /// push, and the only status request is the final fetch of outputs.
    /// Servers without `GET /events` fall back to [`JobHandle::wait`]'s
    /// subscribe-then-poll behaviour.
    ///
    /// # Errors
    ///
    /// See [`ServiceClient::submit`] and [`JobHandle::wait`].
    pub fn call(
        &self,
        inputs: &Value,
        timeout: Duration,
    ) -> Result<JobRepresentation, ServiceError> {
        let stream = sse::subscribe(
            &self.url,
            "job.",
            None,
            SSE_CONNECT_TIMEOUT,
            sse::DEFAULT_HEARTBEAT,
        )
        .ok();
        let job = self.submit(inputs)?;
        match stream {
            Some(stream) => job.wait_streamed(stream, timeout),
            None => job.wait(timeout),
        }
    }

    /// [`ServiceClient::call`] under an `Idempotency-Key`: submit-and-wait
    /// where the submission is safe to retry (and to repeat wholesale —
    /// calling this twice with the same key waits on the same job twice).
    ///
    /// # Errors
    ///
    /// See [`ServiceClient::call`].
    pub fn call_idempotent(
        &self,
        inputs: &Value,
        key: &str,
        timeout: Duration,
    ) -> Result<JobRepresentation, ServiceError> {
        let stream = sse::subscribe(
            &self.url,
            "job.",
            None,
            SSE_CONNECT_TIMEOUT,
            sse::DEFAULT_HEARTBEAT,
        )
        .ok();
        let job = self.submit_idempotent(inputs, key)?;
        match stream {
            Some(stream) => job.wait_streamed(stream, timeout),
            None => job.wait(timeout),
        }
    }

    /// Reattaches to an existing job by id — the durable-jobs counterpart
    /// of [`ServiceClient::submit`]: after a container restart, a client
    /// holding only a job id from before the crash gets a live
    /// [`JobHandle`] (and can [`JobHandle::wait`]) as long as the
    /// container's journal recovered the job.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Http`] with status 404 when the job is unknown;
    /// transport and payload errors as usual.
    pub fn job(&self, job_id: &str) -> Result<JobHandle, ServiceError> {
        let url = self
            .url
            .with_target(&format!("{}/jobs/{job_id}", self.url.target()));
        let resp = self
            .client
            .get(&url.to_string())
            .map_err(|e| ServiceError::Transport(e.to_string()))?;
        if !resp.status.is_success() {
            return Err(http_error(&resp));
        }
        let rep = JobRepresentation::from_value(
            &resp
                .body_json()
                .map_err(|e| ServiceError::Protocol(e.to_string()))?,
        )
        .map_err(ServiceError::Protocol)?;
        let request_id = resp
            .headers
            .get(REQUEST_ID_HEADER)
            .map(str::to_string)
            .unwrap_or_default();
        Ok(JobHandle {
            client: self.client.clone(),
            base: self.url.clone(),
            rep,
            request_id,
            memo_hit: false,
        })
    }
}

/// A handle on a submitted job.
#[derive(Debug, Clone)]
pub struct JobHandle {
    client: Client,
    base: Url,
    rep: JobRepresentation,
    request_id: String,
    memo_hit: bool,
}

impl JobHandle {
    /// The most recently fetched representation.
    pub fn representation(&self) -> &JobRepresentation {
        &self.rep
    }

    /// The request id this job was submitted under (as echoed by the
    /// server). Quote it when reporting problems: server-side spans and the
    /// `/metrics`-adjacent trace buffer are keyed by it.
    pub fn request_id(&self) -> &str {
        &self.request_id
    }

    /// Whether the submission was answered from the server's result memo
    /// cache (`X-MC-Memo-Hit`): the handle points at an existing job —
    /// usually already DONE — instead of a freshly created one. Always
    /// `false` for handles reattached via [`ServiceClient::job`].
    pub fn was_memo_hit(&self) -> bool {
        self.memo_hit
    }

    /// The job's absolute URL.
    pub fn job_url(&self) -> String {
        self.base.with_target(&self.rep.uri).to_string()
    }

    /// Re-fetches the job representation.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] on transport or payload problems.
    pub fn refresh(&mut self) -> Result<&JobRepresentation, ServiceError> {
        let resp = self
            .client
            .get(&self.job_url())
            .map_err(|e| ServiceError::Transport(e.to_string()))?;
        if !resp.status.is_success() {
            return Err(http_error(&resp));
        }
        self.rep = JobRepresentation::from_value(
            &resp
                .body_json()
                .map_err(|e| ServiceError::Protocol(e.to_string()))?,
        )
        .map_err(ServiceError::Protocol)?;
        Ok(&self.rep)
    }

    /// Waits until the job is DONE, failing on FAILED/CANCELLED/timeout.
    ///
    /// Push-first: subscribes to the container's `GET /events` stream and
    /// blocks on this job's terminal `job.*` event, so waiting out a long
    /// job costs a handful of requests instead of one per poll interval.
    /// When the server predates `/events`, or the stream drops twice, the
    /// wait falls back to [`JobHandle::wait_polling`]'s loop.
    ///
    /// # Errors
    ///
    /// [`ServiceError::JobFailed`] with the server's reason, or
    /// [`ServiceError::Timeout`].
    pub fn wait(mut self, timeout: Duration) -> Result<JobRepresentation, ServiceError> {
        let deadline = Instant::now() + timeout;
        if !self.rep.state.is_terminal() && sse::service_segment(&self.rep.uri).is_some() {
            if let Ok(stream) = sse::subscribe(
                &self.base,
                "job.",
                None,
                SSE_CONNECT_TIMEOUT,
                sse::DEFAULT_HEARTBEAT,
            ) {
                // The job may have turned terminal before the subscription
                // existed; one refresh closes that race. Anything happening
                // after this fetch reaches the already-open stream.
                self.refresh()?;
                return self
                    .wait_streamed(stream, deadline.saturating_duration_since(Instant::now()));
            }
        }
        self.wait_polling_until(deadline)
    }

    /// [`JobHandle::wait`] over an already-open `job.` event stream —
    /// typically one subscribed *before* the job was submitted (see
    /// [`ServiceClient::call`]), which closes the fast-job race without any
    /// extra status request.
    ///
    /// # Errors
    ///
    /// See [`JobHandle::wait`].
    pub fn wait_streamed(
        mut self,
        stream: sse::EventStream,
        timeout: Duration,
    ) -> Result<JobRepresentation, ServiceError> {
        let deadline = Instant::now() + timeout;
        if !self.rep.state.is_terminal() {
            if let Some(service) = sse::service_segment(&self.rep.uri).map(str::to_string) {
                match sse::watch_job_on(
                    &self.base,
                    stream,
                    &service,
                    self.rep.id.as_str(),
                    deadline,
                ) {
                    sse::WatchResult::Terminal(_) => {
                        // One status request fetches outputs (or the error);
                        // the poll loop below sees a terminal state and
                        // returns without sleeping.
                        self.refresh()?;
                    }
                    sse::WatchResult::TimedOut => return Err(ServiceError::Timeout),
                    sse::WatchResult::Dropped => {}
                }
            }
        }
        self.wait_polling_until(deadline)
    }

    /// Classic poll-only wait (the §2 client loop) — the forced-poll mode
    /// used against servers without `/events` and by benchmarks comparing
    /// poll and push request volume.
    ///
    /// # Errors
    ///
    /// See [`JobHandle::wait`].
    pub fn wait_polling(self, timeout: Duration) -> Result<JobRepresentation, ServiceError> {
        self.wait_polling_until(Instant::now() + timeout)
    }

    fn wait_polling_until(mut self, deadline: Instant) -> Result<JobRepresentation, ServiceError> {
        let mut backoff = PollBackoff::new();
        loop {
            match self.rep.state {
                JobState::Done => return Ok(self.rep),
                JobState::Failed => {
                    return Err(ServiceError::JobFailed(
                        self.rep.error.unwrap_or_else(|| "unknown reason".into()),
                    ))
                }
                JobState::Cancelled => {
                    return Err(ServiceError::JobFailed("job was cancelled".into()))
                }
                JobState::Waiting | JobState::Running => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(ServiceError::Timeout);
                    }
                    std::thread::sleep(backoff.next_pause().min(deadline - now));
                    self.refresh()?;
                }
            }
        }
    }

    /// Cancels the job (or deletes a finished job's data).
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when the DELETE is rejected.
    pub fn cancel(&self) -> Result<(), ServiceError> {
        let resp = self
            .client
            .delete(&self.job_url())
            .map_err(|e| ServiceError::Transport(e.to_string()))?;
        if resp.status.is_success() {
            Ok(())
        } else {
            Err(http_error(&resp))
        }
    }

    /// Downloads a file output (an absolute URL from a DONE representation).
    ///
    /// # Errors
    ///
    /// [`ServiceError`] on transport or HTTP failure.
    pub fn download(&self, file_url: &str) -> Result<Vec<u8>, ServiceError> {
        let resp = self
            .client
            .get(file_url)
            .map_err(|e| ServiceError::Transport(e.to_string()))?;
        if !resp.status.is_success() {
            return Err(http_error(&resp));
        }
        Ok(resp.body)
    }
}

/// Lists the services deployed on a container.
///
/// # Errors
///
/// [`ServiceError`] on transport, HTTP or payload problems.
pub fn list_services(container_url: &str) -> Result<Vec<ServiceDescription>, ServiceError> {
    let client = Client::new();
    let url = format!("{}/services", container_url.trim_end_matches('/'));
    let resp = client
        .get(&url)
        .map_err(|e| ServiceError::Transport(e.to_string()))?;
    if !resp.status.is_success() {
        return Err(http_error(&resp));
    }
    let doc = resp
        .body_json()
        .map_err(|e| ServiceError::Protocol(e.to_string()))?;
    let arr = doc
        .as_array()
        .ok_or_else(|| ServiceError::Protocol("service list is not an array".into()))?;
    arr.iter()
        .map(|v| {
            ServiceDescription::from_value(v).map_err(|e| ServiceError::Protocol(e.to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathcloud_core::Parameter;
    use mathcloud_everest::adapter::NativeAdapter;
    use mathcloud_everest::Everest;
    use mathcloud_json::{json, Schema};

    fn demo_server() -> (mathcloud_http::Server, String) {
        let e = Everest::new("demo");
        e.deploy(
            ServiceDescription::new("sum", "adds")
                .input(Parameter::new("a", Schema::integer()))
                .input(Parameter::new("b", Schema::integer()))
                .output(Parameter::new("total", Schema::integer())),
            NativeAdapter::from_fn(|inputs, _| {
                let a = inputs.get("a").and_then(Value::as_i64).unwrap_or(0);
                let b = inputs.get("b").and_then(Value::as_i64).unwrap_or(0);
                Ok([("total".to_string(), json!(a + b))].into_iter().collect())
            }),
        );
        e.deploy(
            ServiceDescription::new("slow", "sleeps then fails"),
            NativeAdapter::from_fn(|_, _| {
                std::thread::sleep(Duration::from_millis(50));
                Err("exhausted".into())
            }),
        );
        let server = mathcloud_everest::serve(e, "127.0.0.1:0", None).unwrap();
        let base = server.base_url();
        (server, base)
    }

    #[test]
    fn describe_submit_wait_round_trip() {
        let (_server, base) = demo_server();
        let svc = ServiceClient::connect(&format!("{base}/services/sum")).unwrap();
        let desc = svc.describe().unwrap();
        assert_eq!(desc.name(), "sum");
        let done = svc
            .call(&json!({"a": 4, "b": 38}), Duration::from_secs(5))
            .unwrap();
        assert_eq!(done.state, JobState::Done);
        assert_eq!(
            done.outputs.unwrap().get("total").unwrap().as_i64(),
            Some(42)
        );
    }

    #[test]
    fn failed_jobs_surface_the_server_reason() {
        let (_server, base) = demo_server();
        let svc = ServiceClient::connect(&format!("{base}/services/slow")).unwrap();
        let err = svc.call(&json!({}), Duration::from_secs(5)).unwrap_err();
        assert!(
            matches!(&err, ServiceError::JobFailed(m) if m.contains("exhausted")),
            "{err}"
        );
    }

    #[test]
    fn validation_errors_map_to_http_400() {
        let (_server, base) = demo_server();
        let svc = ServiceClient::connect(&format!("{base}/services/sum")).unwrap();
        let err = svc.submit(&json!({"a": "wrong"})).unwrap_err();
        assert!(
            matches!(err, ServiceError::Http { status: 400, .. }),
            "{err}"
        );
    }

    #[test]
    fn cancel_deletes_finished_jobs() {
        let (_server, base) = demo_server();
        let svc = ServiceClient::connect(&format!("{base}/services/sum")).unwrap();
        let job = svc.submit(&json!({"a": 1, "b": 1})).unwrap();
        let mut polled = job.clone();
        // Wait for completion, then DELETE the job resource.
        while !polled.refresh().unwrap().state.is_terminal() {
            std::thread::sleep(Duration::from_millis(5));
        }
        job.cancel().unwrap();
        let mut gone = job.clone();
        assert!(matches!(
            gone.refresh().unwrap_err(),
            ServiceError::Http { status: 404, .. }
        ));
    }

    #[test]
    fn list_services_enumerates_container() {
        let (_server, base) = demo_server();
        let services = list_services(&base).unwrap();
        let names: Vec<&str> = services.iter().map(|d| d.name()).collect();
        assert_eq!(names, ["sum", "slow"]);
    }

    #[test]
    fn connect_rejects_garbage_urls() {
        assert!(ServiceClient::connect("ftp://nope").is_err());
    }

    #[test]
    fn memo_hits_surface_on_the_handle() {
        let e = Everest::new("memo-demo");
        e.deploy(
            ServiceDescription::new("sum", "adds")
                .input(Parameter::new("a", Schema::integer()))
                .input(Parameter::new("b", Schema::integer()))
                .output(Parameter::new("total", Schema::integer())),
            NativeAdapter::from_fn(|inputs, _| {
                let a = inputs.get("a").and_then(Value::as_i64).unwrap_or(0);
                let b = inputs.get("b").and_then(Value::as_i64).unwrap_or(0);
                Ok([("total".to_string(), json!(a + b))].into_iter().collect())
            }),
        );
        e.set_result_memoization(true);
        let server = mathcloud_everest::serve(e, "127.0.0.1:0", None).unwrap();
        let base = server.base_url();
        let svc = ServiceClient::connect(&format!("{base}/services/sum")).unwrap();
        let first = svc.submit(&json!({"a": 20, "b": 22})).unwrap();
        assert!(!first.was_memo_hit(), "a cold submission is a miss");
        let mut settled = first.clone();
        while !settled.refresh().unwrap().state.is_terminal() {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Same semantics, different wire accidents: reordered keys and a
        // float spelling of the same integers.
        let repeat = svc.submit(&json!({"b": 22.0, "a": 20.0})).unwrap();
        assert!(repeat.was_memo_hit(), "identical resubmission hits");
        assert_eq!(
            repeat.representation().id.as_str(),
            first.representation().id.as_str(),
            "the hit reuses the original job"
        );
        assert_eq!(repeat.representation().state, JobState::Done);
    }

    #[test]
    fn request_ids_round_trip_through_the_server() {
        let (_server, base) = demo_server();
        let svc = ServiceClient::connect(&format!("{base}/services/sum")).unwrap();
        let job = svc
            .submit_with_request_id(&json!({"a": 1, "b": 2}), "client-rid-0042")
            .unwrap();
        assert_eq!(job.request_id(), "client-rid-0042");
        // Auto-generated ids are minted client-side and echoed unchanged.
        let job = svc.submit(&json!({"a": 1, "b": 2})).unwrap();
        assert_eq!(job.request_id().len(), 16);
        assert!(job.request_id().bytes().all(|b| b.is_ascii_hexdigit()));
    }
}
