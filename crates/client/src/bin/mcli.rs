//! `mcli` — the MathCloud command-line client (§3.5 of the paper).
//!
//! ```text
//! mcli list <container-url>                 list deployed services
//! mcli describe <service-url>               print a service description
//! mcli submit <service-url> k=v [k=v ...]   submit a job, print its URL
//! mcli call <service-url> k=v [k=v ...]     submit, wait, print outputs
//! mcli status <job-url>                     print a job representation
//! mcli cancel <job-url>                     cancel / delete a job
//! ```
//!
//! Values parse as JSON when possible (`n=250` is a number, `m='"text"'` a
//! string) and fall back to plain strings.

use std::process::ExitCode;
use std::time::Duration;

use mathcloud_client::{list_services, ServiceClient, ServiceError};
use mathcloud_http::Client;
use mathcloud_json::value::Object;
use mathcloud_json::Value;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mcli: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let usage = "usage: mcli <list|describe|submit|call|status|cancel> <url> [k=v ...]";
    let command = args.first().ok_or(usage)?;
    let url = args.get(1).ok_or(usage)?;
    match command.as_str() {
        "list" => {
            for d in list_services(url).map_err(stringify)? {
                println!("{}\t{}", d.name(), d.description());
            }
            Ok(())
        }
        "describe" => {
            let svc = ServiceClient::connect(url).map_err(stringify)?;
            let desc = svc.describe().map_err(stringify)?;
            println!("{}", desc.to_value().to_pretty_string());
            Ok(())
        }
        "submit" => {
            let svc = ServiceClient::connect(url).map_err(stringify)?;
            let inputs = parse_inputs(&args[2..])?;
            let job = svc.submit(&Value::Object(inputs)).map_err(stringify)?;
            println!("{}", job.job_url());
            eprintln!("request-id: {}", job.request_id());
            Ok(())
        }
        "call" => {
            let svc = ServiceClient::connect(url).map_err(stringify)?;
            let inputs = parse_inputs(&args[2..])?;
            let job = svc.submit(&Value::Object(inputs)).map_err(stringify)?;
            eprintln!("request-id: {}", job.request_id());
            let rep = job.wait(Duration::from_secs(3600)).map_err(stringify)?;
            println!("{}", rep.to_value().to_pretty_string());
            Ok(())
        }
        "status" => {
            let resp = Client::new().get(url).map_err(|e| e.to_string())?;
            if !resp.status.is_success() {
                return Err(format!("{}: {}", resp.status, resp.body_string()));
            }
            let doc = resp.body_json().map_err(|e| e.to_string())?;
            println!("{}", doc.to_pretty_string());
            Ok(())
        }
        "cancel" => {
            let resp = Client::new().delete(url).map_err(|e| e.to_string())?;
            if resp.status.is_success() {
                println!("cancelled");
                Ok(())
            } else {
                Err(format!("{}: {}", resp.status, resp.body_string()))
            }
        }
        other => Err(format!("unknown command {other:?}\n{usage}")),
    }
}

fn stringify(e: ServiceError) -> String {
    e.to_string()
}

/// Parses `key=value` arguments, interpreting each value as JSON when it
/// parses and as a plain string otherwise.
fn parse_inputs(pairs: &[String]) -> Result<Object, String> {
    let mut inputs = Object::new();
    for pair in pairs {
        let (key, raw) = pair
            .split_once('=')
            .ok_or_else(|| format!("argument {pair:?} is not key=value"))?;
        let value = mathcloud_json::parse(raw).unwrap_or_else(|_| Value::from(raw));
        inputs.insert(key.to_string(), value);
    }
    Ok(inputs)
}
