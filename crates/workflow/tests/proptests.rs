//! Property-based tests for the workflow crate: the mcscript language and
//! the workflow JSON format.

use mathcloud_json::value::Object;
use mathcloud_json::{Schema, Value};
use mathcloud_workflow::{run_script, validate, Block, BlockKind, Workflow};
use proptest::prelude::*;
use std::collections::HashMap;

/// mcscript integer arithmetic agrees with wrapping i64 semantics.
fn eval_int(expr: &str) -> Option<i64> {
    let outputs = run_script(&format!("r = {expr};"), &Object::new()).ok()?;
    outputs.get("r")?.as_i64()
}

proptest! {
    /// The lexer+parser+evaluator never panic on arbitrary input.
    #[test]
    fn mcscript_is_panic_free(src in "\\PC{0,80}") {
        let _ = run_script(&src, &Object::new());
    }

    /// Addition and multiplication of literals match Rust's wrapping i64.
    #[test]
    fn mcscript_integer_arithmetic(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        prop_assert_eq!(eval_int(&format!("({a}) + ({b})")), Some(a.wrapping_add(b)));
        prop_assert_eq!(eval_int(&format!("({a}) * ({b})")), Some(a.wrapping_mul(b)));
        prop_assert_eq!(eval_int(&format!("({a}) - ({b})")), Some(a.wrapping_sub(b)));
        if b != 0 {
            prop_assert_eq!(eval_int(&format!("({a}) % ({b})")), Some(a.wrapping_rem(b)));
        }
    }

    /// Comparison operators match Rust's.
    #[test]
    fn mcscript_comparisons(a in -100i64..100, b in -100i64..100) {
        let run_bool = |expr: &str| {
            run_script(&format!("r = {expr};"), &Object::new())
                .ok()
                .and_then(|o| o.get("r").and_then(Value::as_bool))
        };
        prop_assert_eq!(run_bool(&format!("({a}) < ({b})")), Some(a < b));
        prop_assert_eq!(run_bool(&format!("({a}) >= ({b})")), Some(a >= b));
        prop_assert_eq!(run_bool(&format!("({a}) == ({b})")), Some(a == b));
    }

    /// split/join round-trips any separator-free token list.
    #[test]
    fn mcscript_split_join_round_trip(tokens in prop::collection::vec("[a-z0-9]{1,6}", 1..6)) {
        let joined = tokens.join(",");
        let inputs: Object =
            [("text".to_string(), Value::from(joined.clone()))].into_iter().collect();
        let outputs = run_script(r#"r = join(split(text, ","), ",");"#, &inputs).unwrap();
        prop_assert_eq!(outputs.get("r").unwrap().as_str(), Some(joined.as_str()));
    }

    /// String variables pass through scripts unmangled (no injection via
    /// quotes/newlines because values are bound, not spliced).
    #[test]
    fn mcscript_binds_values_not_text(payload in "\\PC{0,40}") {
        let inputs: Object =
            [("p".to_string(), Value::from(payload.clone()))].into_iter().collect();
        let outputs = run_script("r = p;", &inputs).unwrap();
        prop_assert_eq!(outputs.get("r").unwrap().as_str(), Some(payload.as_str()));
    }

    /// Workflow documents round-trip through JSON for arbitrary
    /// block/edge shapes.
    #[test]
    fn workflow_json_round_trip(
        inputs in prop::collection::vec("[a-m]{1,4}", 1..4),
        outputs in prop::collection::vec("[n-z]{1,4}", 1..4),
    ) {
        let mut wf = Workflow::new("prop", "generated");
        let mut seen = std::collections::HashSet::new();
        for name in inputs.iter().filter(|n| seen.insert((*n).clone())) {
            wf = wf.input(name, Schema::integer());
        }
        let mut out_seen = std::collections::HashSet::new();
        for name in outputs.iter().filter(|n| out_seen.insert((*n).clone())) {
            wf = wf.output(name, Schema::any());
        }
        wf = wf.block(Block {
            id: "script".into(),
            kind: BlockKind::Script {
                code: "x = 1;".into(),
                inputs: vec![],
                outputs: vec![("x".into(), Schema::integer())],
            },
        });
        let text = wf.to_value().to_pretty_string();
        let parsed = Workflow::from_value(&mathcloud_json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(parsed, wf);
    }

    /// Randomly generated linear chains always validate and execute to the
    /// expected arithmetic result.
    #[test]
    fn linear_script_chains_execute(increments in prop::collection::vec(1i64..50, 1..6), start in 0i64..100) {
        let mut wf = Workflow::new("chain", "").input("x", Schema::integer());
        let mut prev = ("x".to_string(), "value".to_string());
        for (i, inc) in increments.iter().enumerate() {
            let id = format!("s{i}");
            wf = wf.block(Block {
                id: id.clone(),
                kind: BlockKind::Script {
                    code: format!("o = i + {inc};"),
                    inputs: vec![("i".into(), Schema::integer())],
                    outputs: vec![("o".into(), Schema::integer())],
                },
            });
            wf = wf.wire((&prev.0, &prev.1), (&id, "i"));
            prev = (id, "o".to_string());
        }
        wf = wf.output("r", Schema::integer()).wire((&prev.0, &prev.1), ("r", "value"));

        let validated = validate(&wf, &HashMap::new()).expect("chain validates");
        let engine = mathcloud_workflow::Engine::with_caller(validated, NoServices);
        let inputs: Object = [("x".to_string(), Value::from(start))].into_iter().collect();
        let outputs = engine.run(&inputs).unwrap();
        let expected: i64 = start + increments.iter().sum::<i64>();
        prop_assert_eq!(outputs.get("r").unwrap().as_i64(), Some(expected));
    }
}

/// A caller for workflows without service blocks.
struct NoServices;

impl mathcloud_workflow::ServiceCaller for NoServices {
    fn call(&self, url: &str, _inputs: &Object) -> Result<Object, String> {
        Err(format!("no services available in this test (asked for {url})"))
    }
}
