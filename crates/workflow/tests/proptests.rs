//! Randomized property tests for the workflow crate: the mcscript language
//! and the workflow JSON format. Driven by the workspace's deterministic
//! PRNG (offline, reproducible).

use mathcloud_json::value::Object;
use mathcloud_json::{Schema, Value};
use mathcloud_telemetry::XorShift64;
use mathcloud_workflow::{run_script, validate, Block, BlockKind, Workflow};
use std::collections::HashMap;

const CASES: usize = 200;

/// mcscript integer arithmetic agrees with wrapping i64 semantics.
fn eval_int(expr: &str) -> Option<i64> {
    let outputs = run_script(&format!("r = {expr};"), &Object::new()).ok()?;
    outputs.get("r")?.as_i64()
}

/// The lexer+parser+evaluator never panic on arbitrary input.
#[test]
fn mcscript_is_panic_free() {
    let mut rng = XorShift64::new(0x9A71C);
    for _ in 0..CASES {
        let src = rng.unicode_string(80);
        let _ = run_script(&src, &Object::new());
    }
}

/// Addition and multiplication of literals match Rust's wrapping i64.
#[test]
fn mcscript_integer_arithmetic() {
    let mut rng = XorShift64::new(0x147);
    for case in 0..CASES {
        let a = rng.range_i64(-10_000, 9_999);
        let b = rng.range_i64(-10_000, 9_999);
        assert_eq!(
            eval_int(&format!("({a}) + ({b})")),
            Some(a.wrapping_add(b)),
            "case {case}"
        );
        assert_eq!(
            eval_int(&format!("({a}) * ({b})")),
            Some(a.wrapping_mul(b)),
            "case {case}"
        );
        assert_eq!(
            eval_int(&format!("({a}) - ({b})")),
            Some(a.wrapping_sub(b)),
            "case {case}"
        );
        if b != 0 {
            assert_eq!(
                eval_int(&format!("({a}) % ({b})")),
                Some(a.wrapping_rem(b)),
                "case {case}"
            );
        }
    }
}

/// Comparison operators match Rust's.
#[test]
fn mcscript_comparisons() {
    let run_bool = |expr: &str| {
        run_script(&format!("r = {expr};"), &Object::new())
            .ok()
            .and_then(|o| o.get("r").and_then(Value::as_bool))
    };
    let mut rng = XorShift64::new(0xC09);
    for case in 0..CASES {
        let a = rng.range_i64(-100, 99);
        let b = rng.range_i64(-100, 99);
        assert_eq!(
            run_bool(&format!("({a}) < ({b})")),
            Some(a < b),
            "case {case}"
        );
        assert_eq!(
            run_bool(&format!("({a}) >= ({b})")),
            Some(a >= b),
            "case {case}"
        );
        assert_eq!(
            run_bool(&format!("({a}) == ({b})")),
            Some(a == b),
            "case {case}"
        );
    }
}

/// split/join round-trips any separator-free token list.
#[test]
fn mcscript_split_join_round_trip() {
    const TOKEN: &[char] = &['a', 'b', 'z', '0', '9'];
    let mut rng = XorShift64::new(0x5913);
    for case in 0..CASES {
        let n = 1 + rng.index(5);
        let tokens: Vec<String> = (0..n)
            .map(|_| {
                let len = 1 + rng.index(6);
                rng.string_from(TOKEN, len)
            })
            .collect();
        let joined = tokens.join(",");
        let inputs: Object = [("text".to_string(), Value::from(joined.clone()))]
            .into_iter()
            .collect();
        let outputs = run_script(r#"r = join(split(text, ","), ",");"#, &inputs).unwrap();
        assert_eq!(
            outputs.get("r").unwrap().as_str(),
            Some(joined.as_str()),
            "case {case}"
        );
    }
}

/// String variables pass through scripts unmangled (no injection via
/// quotes/newlines because values are bound, not spliced).
#[test]
fn mcscript_binds_values_not_text() {
    let mut rng = XorShift64::new(0xB1D);
    for case in 0..CASES {
        let payload = rng.unicode_string(40);
        let inputs: Object = [("p".to_string(), Value::from(payload.clone()))]
            .into_iter()
            .collect();
        let outputs = run_script("r = p;", &inputs).unwrap();
        assert_eq!(
            outputs.get("r").unwrap().as_str(),
            Some(payload.as_str()),
            "case {case}"
        );
    }
}

/// Workflow documents round-trip through JSON for arbitrary block/edge
/// shapes.
#[test]
fn workflow_json_round_trip() {
    const IN_POOL: &[char] = &['a', 'b', 'c', 'd', 'e', 'm'];
    const OUT_POOL: &[char] = &['n', 'o', 'p', 'x', 'y', 'z'];
    let mut rng = XorShift64::new(0x3F10);
    for case in 0..CASES {
        let mut wf = Workflow::new("prop", "generated");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1 + rng.index(3) {
            let len = 1 + rng.index(4);
            let name = rng.string_from(IN_POOL, len);
            if seen.insert(name.clone()) {
                wf = wf.input(&name, Schema::integer());
            }
        }
        let mut out_seen = std::collections::HashSet::new();
        for _ in 0..1 + rng.index(3) {
            let len = 1 + rng.index(4);
            let name = rng.string_from(OUT_POOL, len);
            if out_seen.insert(name.clone()) {
                wf = wf.output(&name, Schema::any());
            }
        }
        wf = wf.block(Block {
            id: "script".into(),
            kind: BlockKind::Script {
                code: "x = 1;".into(),
                inputs: vec![],
                outputs: vec![("x".into(), Schema::integer())],
            },
        });
        let text = wf.to_value().to_pretty_string();
        let parsed = Workflow::from_value(&mathcloud_json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, wf, "case {case}");
    }
}

/// Randomly generated linear chains always validate and execute to the
/// expected arithmetic result.
#[test]
fn linear_script_chains_execute() {
    let mut rng = XorShift64::new(0xC8A1);
    for _ in 0..40 {
        let n = 1 + rng.index(5);
        let increments: Vec<i64> = (0..n).map(|_| rng.range_i64(1, 49)).collect();
        let start = rng.range_i64(0, 99);
        let mut wf = Workflow::new("chain", "").input("x", Schema::integer());
        let mut prev = ("x".to_string(), "value".to_string());
        for (i, inc) in increments.iter().enumerate() {
            let id = format!("s{i}");
            wf = wf.block(Block {
                id: id.clone(),
                kind: BlockKind::Script {
                    code: format!("o = i + {inc};"),
                    inputs: vec![("i".into(), Schema::integer())],
                    outputs: vec![("o".into(), Schema::integer())],
                },
            });
            wf = wf.wire((&prev.0, &prev.1), (&id, "i"));
            prev = (id, "o".to_string());
        }
        wf = wf
            .output("r", Schema::integer())
            .wire((&prev.0, &prev.1), ("r", "value"));

        let validated = validate(&wf, &HashMap::new()).expect("chain validates");
        let engine = mathcloud_workflow::Engine::with_caller(validated, NoServices);
        let inputs: Object = [("x".to_string(), Value::from(start))]
            .into_iter()
            .collect();
        let outputs = engine.run(&inputs).unwrap();
        let expected: i64 = start + increments.iter().sum::<i64>();
        assert_eq!(outputs.get("r").unwrap().as_i64(), Some(expected));
    }
}

/// A caller for workflows without service blocks.
struct NoServices;

impl mathcloud_workflow::ServiceCaller for NoServices {
    fn call(&self, url: &str, _inputs: &Object) -> Result<Object, String> {
        Err(format!(
            "no services available in this test (asked for {url})"
        ))
    }
}
