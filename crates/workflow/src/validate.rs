//! Workflow validation: the checks the graphical editor performs.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use mathcloud_core::ServiceDescription;
use mathcloud_json::Schema;

use crate::model::{BlockKind, Workflow};

/// Supplies service descriptions for `Service` blocks.
///
/// The editor "dynamically retrieves service description and extracts
/// information about the number, types and names of input and output
/// parameters" — over HTTP in production ([`HttpDescriptions`]), from a map
/// in tests.
pub trait DescriptionSource {
    /// Fetches the description of the service at `url`.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the description cannot be obtained.
    fn describe(&self, url: &str) -> Result<ServiceDescription, String>;
}

impl DescriptionSource for HashMap<String, ServiceDescription> {
    fn describe(&self, url: &str) -> Result<ServiceDescription, String> {
        self.get(url)
            .cloned()
            .ok_or_else(|| format!("unknown service {url:?}"))
    }
}

/// Fetches descriptions over the unified REST API.
#[derive(Debug)]
pub struct HttpDescriptions {
    client: mathcloud_http::Client,
}

impl Default for HttpDescriptions {
    fn default() -> Self {
        HttpDescriptions::new()
    }
}

impl HttpDescriptions {
    /// Creates a fetcher with default client settings. Description documents
    /// are small and static, so fetches get a tight deadline rather than the
    /// general-purpose 30 s budget.
    pub fn new() -> Self {
        HttpDescriptions {
            client: mathcloud_http::Client::new()
                .with_timeout(std::time::Duration::from_secs(5))
                .with_connect_timeout(std::time::Duration::from_secs(5)),
        }
    }
}

impl DescriptionSource for HttpDescriptions {
    fn describe(&self, url: &str) -> Result<ServiceDescription, String> {
        let resp = self.client.get(url).map_err(|e| e.to_string())?;
        if !resp.status.is_success() {
            return Err(format!("{} from {url}", resp.status));
        }
        let doc = resp.body_json().map_err(|e| e.to_string())?;
        ServiceDescription::from_value(&doc).map_err(|e| e.to_string())
    }
}

/// One validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationIssue(pub String);

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for ValidationIssue {}

/// A workflow that passed validation, with resolved service descriptions and
/// a topological execution order.
#[derive(Debug, Clone)]
pub struct ValidatedWorkflow {
    /// The workflow document.
    pub workflow: Workflow,
    /// Resolved descriptions of `Service` blocks, keyed by block id.
    pub services: HashMap<String, ServiceDescription>,
    /// Block ids in a valid execution order.
    pub topo_order: Vec<String>,
}

fn issue(issues: &mut Vec<ValidationIssue>, text: impl Into<String>) {
    issues.push(ValidationIssue(text.into()));
}

/// Validates a workflow, resolving service ports through `source`.
///
/// Checks performed (all collected, not first-failure):
/// * block ids are unique and non-empty,
/// * service descriptions resolve,
/// * edges reference existing blocks and ports with the right direction,
/// * every input port has at most one incoming edge,
/// * required service/script inputs are wired (or defaulted),
/// * every output block is wired,
/// * the graph is acyclic.
///
/// # Errors
///
/// All discovered issues.
pub fn validate(
    workflow: &Workflow,
    source: &dyn DescriptionSource,
) -> Result<ValidatedWorkflow, Vec<ValidationIssue>> {
    let mut issues = Vec::new();

    // Unique, non-empty ids.
    let mut seen = std::collections::HashSet::new();
    for b in &workflow.blocks {
        if b.id.is_empty() {
            issue(&mut issues, "block with empty id");
        }
        if !seen.insert(b.id.clone()) {
            issue(&mut issues, format!("duplicate block id {:?}", b.id));
        }
    }

    // Resolve service descriptions.
    let mut services = HashMap::new();
    for b in &workflow.blocks {
        if let BlockKind::Service { url } = &b.kind {
            match source.describe(url) {
                Ok(d) => {
                    services.insert(b.id.clone(), d);
                }
                Err(e) => issue(&mut issues, format!("block {:?}: {e}", b.id)),
            }
        }
    }

    // Port tables.
    let out_schema = |block_id: &str, port: &str| -> Option<Schema> {
        let b = workflow.find(block_id)?;
        match &b.kind {
            BlockKind::Service { .. } => services
                .get(block_id)?
                .output_named(port)
                .map(|p| p.schema().clone()),
            _ => b
                .declared_outputs()
                .into_iter()
                .find(|(n, _)| n == port)
                .map(|(_, s)| s),
        }
    };
    let in_schema = |block_id: &str, port: &str| -> Option<Schema> {
        let b = workflow.find(block_id)?;
        match &b.kind {
            BlockKind::Service { .. } => services
                .get(block_id)?
                .input_named(port)
                .map(|p| p.schema().clone()),
            _ => b
                .declared_inputs()
                .into_iter()
                .find(|(n, _)| n == port)
                .map(|(_, s)| s),
        }
    };

    // Edges.
    let mut incoming: HashMap<(String, String), usize> = HashMap::new();
    for e in &workflow.edges {
        if workflow.find(&e.from.block).is_none() {
            issue(
                &mut issues,
                format!("edge from unknown block {:?}", e.from.block),
            );
            continue;
        }
        if workflow.find(&e.to.block).is_none() {
            issue(
                &mut issues,
                format!("edge to unknown block {:?}", e.to.block),
            );
            continue;
        }
        let from_schema = out_schema(&e.from.block, &e.from.port);
        if from_schema.is_none() {
            issue(&mut issues, format!("{} is not an output port", e.from));
        }
        let to_schema = in_schema(&e.to.block, &e.to.port);
        if to_schema.is_none() {
            issue(&mut issues, format!("{} is not an input port", e.to));
        }
        if let (Some(from), Some(to)) = (from_schema, to_schema) {
            // "The compatibility of data types is checked during connecting
            // the ports" — types only, not formats/semantics (§3.3).
            if !to.accepts_type_of(&from) {
                issue(
                    &mut issues,
                    format!(
                        "type mismatch on {} -> {}: {:?} does not accept {:?}",
                        e.from,
                        e.to,
                        to.types.iter().map(|t| t.keyword()).collect::<Vec<_>>(),
                        from.types.iter().map(|t| t.keyword()).collect::<Vec<_>>()
                    ),
                );
            }
        }
        *incoming
            .entry((e.to.block.clone(), e.to.port.clone()))
            .or_insert(0) += 1;
    }

    // Single writer per input port.
    for ((block, port), count) in &incoming {
        if *count > 1 {
            issue(
                &mut issues,
                format!("input port {block}.{port} has {count} incoming edges"),
            );
        }
    }

    // Required inputs wired.
    for b in &workflow.blocks {
        let required: Vec<String> = match &b.kind {
            BlockKind::Service { .. } => match services.get(&b.id) {
                Some(d) => d
                    .inputs()
                    .iter()
                    .filter(|p| !p.is_optional())
                    .map(|p| p.name().to_string())
                    .collect(),
                None => continue,
            },
            BlockKind::Script { inputs, .. } => inputs.iter().map(|(n, _)| n.clone()).collect(),
            BlockKind::Output { .. } => vec!["value".to_string()],
            _ => Vec::new(),
        };
        for port in required {
            if !incoming.contains_key(&(b.id.clone(), port.clone())) {
                issue(
                    &mut issues,
                    format!("required input {}.{port} is not connected", b.id),
                );
            }
        }
    }

    // Topological order (Kahn's algorithm).
    let mut indeg: HashMap<&str, usize> =
        workflow.blocks.iter().map(|b| (b.id.as_str(), 0)).collect();
    let mut succ: HashMap<&str, Vec<&str>> = HashMap::new();
    for e in &workflow.edges {
        if workflow.find(&e.from.block).is_some() && workflow.find(&e.to.block).is_some() {
            succ.entry(e.from.block.as_str())
                .or_default()
                .push(e.to.block.as_str());
            *indeg.entry(e.to.block.as_str()).or_default() += 1;
        }
    }
    // Deduplicate ids (duplicate-id workflows are already invalid, but the
    // cycle check must not panic on them).
    let mut ready: Vec<&str> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&id, _)| id)
        .collect();
    ready.sort_by_key(|id| workflow.blocks.iter().position(|b| b.id == *id));
    let mut topo = Vec::new();
    while let Some(id) = ready.pop() {
        topo.push(id.to_string());
        for &next in succ.get(id).map(Vec::as_slice).unwrap_or(&[]) {
            let d = indeg.get_mut(next).expect("successor exists");
            let was = *d;
            *d = d.saturating_sub(1);
            if was == 1 {
                ready.push(next);
            }
        }
    }
    if topo.len() != indeg.len() {
        issue(&mut issues, "workflow graph contains a cycle");
    }

    if issues.is_empty() {
        Ok(ValidatedWorkflow {
            workflow: workflow.clone(),
            services,
            topo_order: topo,
        })
    } else {
        Err(issues)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Block, BlockKind};
    use mathcloud_core::Parameter;

    fn sum_description() -> ServiceDescription {
        ServiceDescription::new("sum", "adds")
            .input(Parameter::new("a", Schema::integer()))
            .input(Parameter::new("b", Schema::integer()))
            .input(Parameter::new("comment", Schema::string()).optional())
            .output(Parameter::new("total", Schema::integer()))
    }

    fn source() -> HashMap<String, ServiceDescription> {
        [("http://h:1/services/sum".to_string(), sum_description())]
            .into_iter()
            .collect()
    }

    fn valid_workflow() -> Workflow {
        Workflow::new("w", "")
            .input("x", Schema::integer())
            .input("y", Schema::integer())
            .service("add", "http://h:1/services/sum")
            .output("result", Schema::integer())
            .wire(("x", "value"), ("add", "a"))
            .wire(("y", "value"), ("add", "b"))
            .wire(("add", "total"), ("result", "value"))
    }

    #[test]
    fn valid_workflow_passes_and_orders_blocks() {
        let v = validate(&valid_workflow(), &source()).unwrap();
        let pos = |id: &str| {
            v.topo_order
                .iter()
                .position(|b| b == id)
                .unwrap_or(usize::MAX)
        };
        assert!(pos("x") < pos("add"));
        assert!(pos("y") < pos("add"));
        assert!(pos("add") < pos("result"));
        assert!(v.services.contains_key("add"));
    }

    #[test]
    fn type_mismatches_are_caught() {
        let wf = Workflow::new("w", "")
            .input("x", Schema::string())
            .service("add", "http://h:1/services/sum")
            .input("y", Schema::integer())
            .output("r", Schema::integer())
            .wire(("x", "value"), ("add", "a")) // string -> integer
            .wire(("y", "value"), ("add", "b"))
            .wire(("add", "total"), ("r", "value"));
        let errs = validate(&wf, &source()).unwrap_err();
        assert!(
            errs.iter().any(|e| e.0.contains("type mismatch")),
            "{errs:?}"
        );
    }

    #[test]
    fn missing_required_inputs_are_caught() {
        let wf = Workflow::new("w", "")
            .input("x", Schema::integer())
            .service("add", "http://h:1/services/sum")
            .output("r", Schema::integer())
            .wire(("x", "value"), ("add", "a"))
            .wire(("add", "total"), ("r", "value"));
        let errs = validate(&wf, &source()).unwrap_err();
        assert!(
            errs.iter().any(|e| e.0.contains("add.b is not connected")),
            "{errs:?}"
        );
        // The optional "comment" input is fine unwired.
        assert!(!errs.iter().any(|e| e.0.contains("comment")));
    }

    #[test]
    fn cycles_are_caught() {
        let wf = Workflow::new("w", "")
            .block(Block {
                id: "s1".into(),
                kind: BlockKind::Script {
                    code: "o = i;".into(),
                    inputs: vec![("i".into(), Schema::any())],
                    outputs: vec![("o".into(), Schema::any())],
                },
            })
            .block(Block {
                id: "s2".into(),
                kind: BlockKind::Script {
                    code: "o = i;".into(),
                    inputs: vec![("i".into(), Schema::any())],
                    outputs: vec![("o".into(), Schema::any())],
                },
            })
            .wire(("s1", "o"), ("s2", "i"))
            .wire(("s2", "o"), ("s1", "i"));
        let errs = validate(&wf, &HashMap::new()).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("cycle")), "{errs:?}");
    }

    #[test]
    fn structural_errors_are_collected_together() {
        let wf = Workflow::new("w", "")
            .input("x", Schema::integer())
            .input("x", Schema::integer()) // duplicate
            .service("s", "http://unknown/svc") // unresolvable
            .output("r", Schema::integer()) // unwired output
            .wire(("ghost", "value"), ("r", "value")) // unknown source
            .wire(("x", "nope"), ("r", "value")); // bad port
        let errs = validate(&wf, &source()).unwrap_err();
        let text = errs
            .iter()
            .map(|e| e.0.clone())
            .collect::<Vec<_>>()
            .join("\n");
        for needle in [
            "duplicate block id",
            "unknown service",
            "edge from unknown block",
            "not an output port",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn double_wired_input_port_is_rejected() {
        let wf = valid_workflow().wire(("y", "value"), ("add", "a"));
        let errs = validate(&wf, &source()).unwrap_err();
        assert!(
            errs.iter().any(|e| e.0.contains("2 incoming edges")),
            "{errs:?}"
        );
    }

    #[test]
    fn integer_flows_into_number_ports() {
        let desc = ServiceDescription::new("f", "")
            .input(Parameter::new("x", Schema::number()))
            .output(Parameter::new("y", Schema::number()));
        let src: HashMap<String, ServiceDescription> =
            [("http://h:1/services/f".to_string(), desc)]
                .into_iter()
                .collect();
        let wf = Workflow::new("w", "")
            .input("i", Schema::integer())
            .service("f", "http://h:1/services/f")
            .output("o", Schema::number())
            .wire(("i", "value"), ("f", "x"))
            .wire(("f", "y"), ("o", "value"));
        assert!(validate(&wf, &src).is_ok());
    }
}
