//! mcscript — the custom-action language for workflow Script blocks.
//!
//! The paper lets users add "custom workflow actions written in JavaScript or
//! Python, for example to create complex string inputs for services from
//! user data". mcscript is this reproduction's sandboxed equivalent: a small
//! expression language with `let` bindings and output assignments,
//! implemented as a classic lexer → recursive-descent parser → tree-walking
//! evaluator over `mathcloud_json::Value`.
//!
//! # Language
//!
//! ```text
//! program   := statement*
//! statement := "let" IDENT "=" expr ";"        local binding
//!            | IDENT "=" expr ";"              output assignment
//! expr      := or
//! or        := and ("||" and)*
//! and       := equality ("&&" equality)*
//! equality  := compare (("==" | "!=") compare)?
//! compare   := additive (("<" | "<=" | ">" | ">=") additive)?
//! additive  := multiplicative (("+" | "-") multiplicative)*
//! multiplicative := unary (("*" | "/" | "%") unary)*
//! unary     := ("-" | "!") unary | postfix
//! postfix   := primary ("(" args ")" | "[" expr "]" | "." IDENT)*
//! primary   := NUMBER | STRING | "true" | "false" | "null" | IDENT
//!            | "(" expr ")" | "[" args "]" | "{" STRING ":" expr, ... "}"
//! ```
//!
//! `+` concatenates when either operand is a string; integer arithmetic
//! stays exact; `/` always yields a float. Builtins: `if(c, a, b)`, `len`,
//! `min`, `max`, `abs`, `floor`, `ceil`, `round`, `str`, `num`, `split`,
//! `join`, `contains`, `keys`, `range`, `parse_json`, `to_json`.
//!
//! # Examples
//!
//! ```
//! use mathcloud_json::json;
//! use mathcloud_workflow::run_script;
//!
//! let inputs = [("rows".to_string(), json!(["1 0", "0 1"]))].into_iter().collect();
//! let outputs = run_script(
//!     "let sep = \"; \";\n matrix = join(rows, sep); count = len(rows);",
//!     &inputs,
//! ).unwrap();
//! assert_eq!(outputs.get("matrix").unwrap().as_str(), Some("1 0; 0 1"));
//! assert_eq!(outputs.get("count").unwrap().as_i64(), Some(2));
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use mathcloud_json::value::Object;
use mathcloud_json::{Number, Value};

/// An mcscript failure with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "script error at line {}: {}", self.line, self.message)
    }
}

impl Error for ScriptError {}

fn err<T>(message: impl Into<String>, line: usize) -> Result<T, ScriptError> {
    Err(ScriptError {
        message: message.into(),
        line,
    })
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64, bool), // value, is_int
    Str(String),
    Punct(&'static str),
    Eof,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> Result<Vec<Token>, ScriptError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '#' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_int = true;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_int = false;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let v: f64 = text.parse().map_err(|_| ScriptError {
                    message: format!("bad number {text:?}"),
                    line,
                })?;
                out.push(Token {
                    tok: Tok::Num(v, is_int),
                    line,
                });
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return err("unterminated string", line);
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            let esc = *bytes.get(i).ok_or(ScriptError {
                                message: "unterminated escape".into(),
                                line,
                            })?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'"' => '"',
                                b'\\' => '\\',
                                other => {
                                    return err(format!("bad escape \\{}", other as char), line)
                                }
                            });
                            i += 1;
                        }
                        b'\n' => return err("newline in string literal", line),
                        _ => {
                            // Copy the full UTF-8 character.
                            let ch_len = utf8_char_len(bytes[i]);
                            s.push_str(&src[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    line,
                });
            }
            _ => {
                // `get` (not slicing) so multi-byte characters at `i` cannot
                // panic on a non-boundary index.
                let two: Option<&'static str> = match src.get(i..i + 2) {
                    Some("==") => Some("=="),
                    Some("!=") => Some("!="),
                    Some("<=") => Some("<="),
                    Some(">=") => Some(">="),
                    Some("&&") => Some("&&"),
                    Some("||") => Some("||"),
                    _ => None,
                };
                if let Some(p) = two {
                    out.push(Token {
                        tok: Tok::Punct(p),
                        line,
                    });
                    i += 2;
                } else {
                    let one: &'static str = match c {
                        '+' => "+",
                        '-' => "-",
                        '*' => "*",
                        '/' => "/",
                        '%' => "%",
                        '=' => "=",
                        '<' => "<",
                        '>' => ">",
                        '!' => "!",
                        '(' => "(",
                        ')' => ")",
                        '[' => "[",
                        ']' => "]",
                        '{' => "{",
                        '}' => "}",
                        ',' => ",",
                        ';' => ";",
                        ':' => ":",
                        '.' => ".",
                        other => return err(format!("unexpected character {other:?}"), line),
                    };
                    out.push(Token {
                        tok: Tok::Punct(one),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

fn utf8_char_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first >= 0xF0 {
        4
    } else if first >= 0xE0 {
        3
    } else {
        2
    }
}

// --------------------------------------------------------------- parser --

#[derive(Debug, Clone)]
enum Expr {
    Lit(Value),
    Var(String, usize),
    Unary(&'static str, Box<Expr>, usize),
    Binary(&'static str, Box<Expr>, Box<Expr>, usize),
    Call(String, Vec<Expr>, usize),
    Index(Box<Expr>, Box<Expr>, usize),
    Member(Box<Expr>, String, usize),
    Array(Vec<Expr>),
    ObjectLit(Vec<(String, Expr)>),
}

#[derive(Debug, Clone)]
enum Stmt {
    Let(String, Expr),
    Assign(String, Expr, usize),
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ScriptError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            err(format!("expected {p:?}"), self.line())
        }
    }

    fn parse_program(&mut self) -> Result<Vec<Stmt>, ScriptError> {
        let mut stmts = Vec::new();
        while !matches!(self.peek(), Tok::Eof) {
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ScriptError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Ident(name) if name == "let" => {
                self.bump();
                let Tok::Ident(var) = self.bump() else {
                    return err("expected identifier after let", line);
                };
                self.expect_punct("=")?;
                let e = self.parse_expr()?;
                self.expect_punct(";")?;
                Ok(Stmt::Let(var, e))
            }
            Tok::Ident(name) => {
                self.bump();
                self.expect_punct("=")?;
                let e = self.parse_expr()?;
                self.expect_punct(";")?;
                Ok(Stmt::Assign(name, e, line))
            }
            other => err(format!("expected statement, found {other:?}"), line),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ScriptError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek(), Tok::Punct("||")) {
            let line = self.line();
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::Binary("||", Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.parse_equality()?;
        while matches!(self.peek(), Tok::Punct("&&")) {
            let line = self.line();
            self.bump();
            let rhs = self.parse_equality()?;
            lhs = Expr::Binary("&&", Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr, ScriptError> {
        let lhs = self.parse_compare()?;
        for op in ["==", "!="] {
            if matches!(self.peek(), Tok::Punct(p) if *p == op) {
                let line = self.line();
                self.bump();
                let rhs = self.parse_compare()?;
                return Ok(Expr::Binary(
                    if op == "==" { "==" } else { "!=" },
                    Box::new(lhs),
                    Box::new(rhs),
                    line,
                ));
            }
        }
        Ok(lhs)
    }

    fn parse_compare(&mut self) -> Result<Expr, ScriptError> {
        let lhs = self.parse_additive()?;
        for op in ["<=", ">=", "<", ">"] {
            if matches!(self.peek(), Tok::Punct(p) if *p == op) {
                let line = self.line();
                self.bump();
                let rhs = self.parse_additive()?;
                let op: &'static str = match op {
                    "<=" => "<=",
                    ">=" => ">=",
                    "<" => "<",
                    _ => ">",
                };
                return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs), line));
            }
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op: &'static str = match self.peek() {
                Tok::Punct("+") => "+",
                Tok::Punct("-") => "-",
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op: &'static str = match self.peek() {
                Tok::Punct("*") => "*",
                Tok::Punct("/") => "/",
                Tok::Punct("%") => "%",
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ScriptError> {
        let line = self.line();
        if self.eat_punct("-") {
            Ok(Expr::Unary("-", Box::new(self.parse_unary()?), line))
        } else if self.eat_punct("!") {
            Ok(Expr::Unary("!", Box::new(self.parse_unary()?), line))
        } else {
            self.parse_postfix()
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, ScriptError> {
        let mut e = self.parse_primary()?;
        loop {
            let line = self.line();
            if self.eat_punct("(") {
                // Calls are only valid on bare identifiers (builtins).
                let Expr::Var(name, _) = e else {
                    return err("only builtin functions can be called", line);
                };
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.parse_expr()?);
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                e = Expr::Call(name, args, line);
            } else if self.eat_punct("[") {
                let idx = self.parse_expr()?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx), line);
            } else if self.eat_punct(".") {
                let Tok::Ident(field) = self.bump() else {
                    return err("expected field name after '.'", line);
                };
                e = Expr::Member(Box::new(e), field, line);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, ScriptError> {
        let line = self.line();
        match self.bump() {
            Tok::Num(v, true) => Ok(Expr::Lit(Value::Number(Number::Int(v as i64)))),
            Tok::Num(v, false) => Ok(Expr::Lit(Value::Number(Number::Float(v)))),
            Tok::Str(s) => Ok(Expr::Lit(Value::String(s))),
            Tok::Ident(name) => match name.as_str() {
                "true" => Ok(Expr::Lit(Value::Bool(true))),
                "false" => Ok(Expr::Lit(Value::Bool(false))),
                "null" => Ok(Expr::Lit(Value::Null)),
                _ => Ok(Expr::Var(name, line)),
            },
            Tok::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Punct("[") => {
                let mut items = Vec::new();
                if !self.eat_punct("]") {
                    loop {
                        items.push(self.parse_expr()?);
                        if self.eat_punct("]") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                Ok(Expr::Array(items))
            }
            Tok::Punct("{") => {
                let mut pairs = Vec::new();
                if !self.eat_punct("}") {
                    loop {
                        let key = match self.bump() {
                            Tok::Str(s) => s,
                            Tok::Ident(s) => s,
                            other => {
                                return err(format!("expected object key, found {other:?}"), line)
                            }
                        };
                        self.expect_punct(":")?;
                        pairs.push((key, self.parse_expr()?));
                        if self.eat_punct("}") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                Ok(Expr::ObjectLit(pairs))
            }
            other => err(format!("unexpected token {other:?}"), line),
        }
    }
}

// ------------------------------------------------------------ evaluator --

struct Env {
    vars: HashMap<String, Value>,
    outputs: Object,
    /// Budget of evaluated nodes, bounding runaway scripts.
    fuel: usize,
}

const FUEL: usize = 1_000_000;

fn truthy(v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Bool(b) => *b,
        Value::Number(n) => n.as_f64() != 0.0,
        Value::String(s) => !s.is_empty(),
        Value::Array(a) => !a.is_empty(),
        Value::Object(o) => !o.is_empty(),
    }
}

fn eval(e: &Expr, env: &mut Env) -> Result<Value, ScriptError> {
    if env.fuel == 0 {
        return err("script exceeded its execution budget", 0);
    }
    env.fuel -= 1;
    match e {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Var(name, line) => env.vars.get(name).cloned().ok_or(ScriptError {
            message: format!("unknown variable {name:?}"),
            line: *line,
        }),
        Expr::Array(items) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(eval(item, env)?);
            }
            Ok(Value::Array(out))
        }
        Expr::ObjectLit(pairs) => {
            let mut o = Object::new();
            for (k, v) in pairs {
                let v = eval(v, env)?;
                o.insert(k.clone(), v);
            }
            Ok(Value::Object(o))
        }
        Expr::Unary(op, inner, line) => {
            let v = eval(inner, env)?;
            match (*op, v) {
                ("-", Value::Number(Number::Int(i))) => Ok(Value::from(-i)),
                ("-", Value::Number(Number::Float(f))) => Ok(Value::from(-f)),
                ("!", v) => Ok(Value::Bool(!truthy(&v))),
                (_, v) => err(format!("cannot negate {}", v.type_name()), *line),
            }
        }
        Expr::Binary(op, lhs, rhs, line) => {
            // Short-circuit logic first.
            if *op == "&&" {
                let l = eval(lhs, env)?;
                return if truthy(&l) { eval(rhs, env) } else { Ok(l) };
            }
            if *op == "||" {
                let l = eval(lhs, env)?;
                return if truthy(&l) { Ok(l) } else { eval(rhs, env) };
            }
            let l = eval(lhs, env)?;
            let r = eval(rhs, env)?;
            binop(op, l, r, *line)
        }
        Expr::Index(target, index, line) => {
            let t = eval(target, env)?;
            let i = eval(index, env)?;
            match (&t, &i) {
                (Value::Array(a), Value::Number(n)) => {
                    let idx = n.as_i64().filter(|&x| x >= 0).ok_or(ScriptError {
                        message: "array index must be a non-negative integer".into(),
                        line: *line,
                    })?;
                    a.get(idx as usize).cloned().ok_or(ScriptError {
                        message: format!("index {idx} out of bounds (len {})", a.len()),
                        line: *line,
                    })
                }
                (Value::Object(o), Value::String(k)) => {
                    Ok(o.get(k).cloned().unwrap_or(Value::Null))
                }
                _ => err(
                    format!("cannot index {} with {}", t.type_name(), i.type_name()),
                    *line,
                ),
            }
        }
        Expr::Member(target, field, line) => {
            let t = eval(target, env)?;
            match &t {
                Value::Object(o) => Ok(o.get(field).cloned().unwrap_or(Value::Null)),
                _ => err(
                    format!("cannot access field {field:?} on {}", t.type_name()),
                    *line,
                ),
            }
        }
        Expr::Call(name, args, line) => {
            // `if` evaluates lazily.
            if name == "if" {
                if args.len() != 3 {
                    return err("if(cond, then, else) takes 3 arguments", *line);
                }
                let c = eval(&args[0], env)?;
                return if truthy(&c) {
                    eval(&args[1], env)
                } else {
                    eval(&args[2], env)
                };
            }
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, env)?);
            }
            builtin(name, &vals, *line)
        }
    }
}

fn as_num(v: &Value, line: usize) -> Result<f64, ScriptError> {
    v.as_f64().ok_or(ScriptError {
        message: format!("expected number, got {}", v.type_name()),
        line,
    })
}

fn both_int(l: &Value, r: &Value) -> Option<(i64, i64)> {
    match (l, r) {
        (Value::Number(Number::Int(a)), Value::Number(Number::Int(b))) => Some((*a, *b)),
        _ => None,
    }
}

fn binop(op: &str, l: Value, r: Value, line: usize) -> Result<Value, ScriptError> {
    match op {
        "+" => {
            if matches!(l, Value::String(_)) || matches!(r, Value::String(_)) {
                return Ok(Value::from(format!("{}{}", to_text(&l), to_text(&r))));
            }
            if let (Value::Array(mut a), Value::Array(b)) = (l.clone(), r.clone()) {
                a.extend(b);
                return Ok(Value::Array(a));
            }
            if let Some((a, b)) = both_int(&l, &r) {
                return Ok(Value::from(a.wrapping_add(b)));
            }
            Ok(Value::from(as_num(&l, line)? + as_num(&r, line)?))
        }
        "-" => {
            if let Some((a, b)) = both_int(&l, &r) {
                return Ok(Value::from(a.wrapping_sub(b)));
            }
            Ok(Value::from(as_num(&l, line)? - as_num(&r, line)?))
        }
        "*" => {
            if let Some((a, b)) = both_int(&l, &r) {
                return Ok(Value::from(a.wrapping_mul(b)));
            }
            Ok(Value::from(as_num(&l, line)? * as_num(&r, line)?))
        }
        "/" => {
            let d = as_num(&r, line)?;
            if d == 0.0 {
                return err("division by zero", line);
            }
            Ok(Value::from(as_num(&l, line)? / d))
        }
        "%" => {
            if let Some((a, b)) = both_int(&l, &r) {
                if b == 0 {
                    return err("modulo by zero", line);
                }
                return Ok(Value::from(a.wrapping_rem(b)));
            }
            let d = as_num(&r, line)?;
            if d == 0.0 {
                return err("modulo by zero", line);
            }
            Ok(Value::from(as_num(&l, line)? % d))
        }
        "==" => Ok(Value::Bool(l == r)),
        "!=" => Ok(Value::Bool(l != r)),
        "<" | "<=" | ">" | ">=" => {
            let ord = match (&l, &r) {
                (Value::String(a), Value::String(b)) => a.cmp(b),
                _ => as_num(&l, line)?
                    .partial_cmp(&as_num(&r, line)?)
                    .ok_or(ScriptError {
                        message: "incomparable values".into(),
                        line,
                    })?,
            };
            let result = match op {
                "<" => ord.is_lt(),
                "<=" => ord.is_le(),
                ">" => ord.is_gt(),
                _ => ord.is_ge(),
            };
            Ok(Value::Bool(result))
        }
        other => err(format!("unknown operator {other:?}"), line),
    }
}

fn to_text(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        other => other.to_string(),
    }
}

fn builtin(name: &str, args: &[Value], line: usize) -> Result<Value, ScriptError> {
    let arity = |n: usize| -> Result<(), ScriptError> {
        if args.len() == n {
            Ok(())
        } else {
            err(
                format!("{name} takes {n} argument(s), got {}", args.len()),
                line,
            )
        }
    };
    match name {
        "len" => {
            arity(1)?;
            let n = match &args[0] {
                Value::String(s) => s.chars().count(),
                Value::Array(a) => a.len(),
                Value::Object(o) => o.len(),
                other => return err(format!("len of {}", other.type_name()), line),
            };
            Ok(Value::from(n))
        }
        "min" | "max" => {
            if args.is_empty() {
                return err(format!("{name} needs at least one argument"), line);
            }
            let mut best = as_num(&args[0], line)?;
            let mut best_v = args[0].clone();
            for a in &args[1..] {
                let x = as_num(a, line)?;
                if (name == "min" && x < best) || (name == "max" && x > best) {
                    best = x;
                    best_v = a.clone();
                }
            }
            Ok(best_v)
        }
        "abs" => {
            arity(1)?;
            match &args[0] {
                Value::Number(Number::Int(i)) => Ok(Value::from(i.wrapping_abs())),
                other => Ok(Value::from(as_num(other, line)?.abs())),
            }
        }
        "floor" => {
            arity(1)?;
            Ok(Value::from(as_num(&args[0], line)?.floor() as i64))
        }
        "ceil" => {
            arity(1)?;
            Ok(Value::from(as_num(&args[0], line)?.ceil() as i64))
        }
        "round" => {
            arity(1)?;
            Ok(Value::from(as_num(&args[0], line)?.round() as i64))
        }
        "str" => {
            arity(1)?;
            Ok(Value::from(to_text(&args[0])))
        }
        "num" => {
            arity(1)?;
            match &args[0] {
                Value::Number(_) => Ok(args[0].clone()),
                Value::String(s) => {
                    if let Ok(i) = s.trim().parse::<i64>() {
                        Ok(Value::from(i))
                    } else {
                        s.trim()
                            .parse::<f64>()
                            .map(Value::from)
                            .map_err(|_| ScriptError {
                                message: format!("cannot convert {s:?} to a number"),
                                line,
                            })
                    }
                }
                other => err(
                    format!("cannot convert {} to a number", other.type_name()),
                    line,
                ),
            }
        }
        "split" => {
            arity(2)?;
            let (Value::String(s), Value::String(sep)) = (&args[0], &args[1]) else {
                return err("split(text, separator) takes two strings", line);
            };
            Ok(Value::Array(
                s.split(sep.as_str()).map(Value::from).collect(),
            ))
        }
        "join" => {
            arity(2)?;
            let (Value::Array(items), Value::String(sep)) = (&args[0], &args[1]) else {
                return err("join(array, separator) takes an array and a string", line);
            };
            let parts: Vec<String> = items.iter().map(to_text).collect();
            Ok(Value::from(parts.join(sep)))
        }
        "contains" => {
            arity(2)?;
            let found = match (&args[0], &args[1]) {
                (Value::String(s), Value::String(needle)) => s.contains(needle.as_str()),
                (Value::Array(a), needle) => a.contains(needle),
                (Value::Object(o), Value::String(k)) => o.contains_key(k),
                _ => return err("contains(haystack, needle) type mismatch", line),
            };
            Ok(Value::Bool(found))
        }
        "keys" => {
            arity(1)?;
            let Value::Object(o) = &args[0] else {
                return err("keys takes an object", line);
            };
            Ok(Value::Array(
                o.keys().map(|k| Value::from(k.as_str())).collect(),
            ))
        }
        "range" => {
            arity(2)?;
            let a = args[0].as_i64().ok_or(ScriptError {
                message: "range bounds must be integers".into(),
                line,
            })?;
            let b = args[1].as_i64().ok_or(ScriptError {
                message: "range bounds must be integers".into(),
                line,
            })?;
            if b < a || (b - a) > 100_000 {
                return err("invalid range", line);
            }
            Ok(Value::Array((a..b).map(Value::from).collect()))
        }
        "parse_json" => {
            arity(1)?;
            let Value::String(s) = &args[0] else {
                return err("parse_json takes a string", line);
            };
            mathcloud_json::parse(s).map_err(|e| ScriptError {
                message: format!("parse_json: {e}"),
                line,
            })
        }
        "to_json" => {
            arity(1)?;
            Ok(Value::from(args[0].to_string()))
        }
        other => err(format!("unknown function {other:?}"), line),
    }
}

/// Runs an mcscript program with the given input bindings.
///
/// Plain assignments (`name = expr;`) become outputs; `let` bindings stay
/// local. Inputs are visible as variables, and assignments also update the
/// visible variable so later statements can build on earlier outputs.
///
/// # Errors
///
/// [`ScriptError`] with the offending line on lexical, syntax or evaluation
/// failure.
pub fn run_script(code: &str, inputs: &Object) -> Result<Object, ScriptError> {
    let tokens = lex(code)?;
    let mut parser = Parser { tokens, pos: 0 };
    let stmts = parser.parse_program()?;
    let mut env = Env {
        vars: inputs.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        outputs: Object::new(),
        fuel: FUEL,
    };
    for stmt in &stmts {
        match stmt {
            Stmt::Let(name, expr) => {
                let v = eval(expr, &mut env)?;
                env.vars.insert(name.clone(), v);
            }
            Stmt::Assign(name, expr, _line) => {
                let v = eval(expr, &mut env)?;
                env.vars.insert(name.clone(), v.clone());
                env.outputs.insert(name.clone(), v);
            }
        }
    }
    Ok(env.outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathcloud_json::json;

    fn run(code: &str, inputs: &[(&str, Value)]) -> Result<Object, ScriptError> {
        let obj: Object = inputs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        run_script(code, &obj)
    }

    fn out(code: &str, inputs: &[(&str, Value)], key: &str) -> Value {
        run(code, inputs)
            .unwrap()
            .get(key)
            .cloned()
            .unwrap_or(Value::Null)
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(out("r = 2 + 3 * 4;", &[], "r"), json!(14));
        assert_eq!(out("r = (2 + 3) * 4;", &[], "r"), json!(20));
        assert_eq!(out("r = 7 % 3;", &[], "r"), json!(1));
        assert_eq!(out("r = 1 / 2;", &[], "r"), json!(0.5));
        assert_eq!(out("r = -3 + 1;", &[], "r"), json!(-2));
        assert_eq!(out("r = 2.5 * 2;", &[], "r"), json!(5.0));
    }

    #[test]
    fn string_operations() {
        assert_eq!(out(r#"r = "a" + "b" + 1;"#, &[], "r"), json!("ab1"));
        assert_eq!(out(r#"r = len("héllo");"#, &[], "r"), json!(5));
        assert_eq!(
            out(r#"r = join(split("a,b,c", ","), ";");"#, &[], "r"),
            json!("a;b;c")
        );
        assert_eq!(
            out(r#"r = contains("workflow", "flow");"#, &[], "r"),
            json!(true)
        );
    }

    #[test]
    fn variables_and_let_scoping() {
        let outputs = run("let t = x * 2; y = t + 1; z = y * y;", &[("x", json!(5))]).unwrap();
        assert_eq!(outputs.get("y"), Some(&json!(11)));
        assert_eq!(outputs.get("z"), Some(&json!(121)));
        assert!(outputs.get("t").is_none(), "let bindings are not outputs");
    }

    #[test]
    fn collections_and_access() {
        assert_eq!(out("r = [1, 2, 3][1];", &[], "r"), json!(2));
        assert_eq!(out(r#"r = {"a": 1, "b": 2}.b;"#, &[], "r"), json!(2));
        assert_eq!(out(r#"r = {"a": 1}["a"];"#, &[], "r"), json!(1));
        assert_eq!(out("r = len(range(0, 5));", &[], "r"), json!(5));
        assert_eq!(out("r = [1] + [2, 3];", &[], "r"), json!([1, 2, 3]));
        assert_eq!(
            out(r#"r = keys({x: 1, y: 2});"#, &[], "r"),
            json!(["x", "y"])
        );
        assert_eq!(
            out(r#"r = obj.missing;"#, &[("obj", json!({"a": 1}))], "r"),
            Value::Null
        );
    }

    #[test]
    fn logic_and_comparison() {
        assert_eq!(out("r = 1 < 2 && 2 <= 2;", &[], "r"), json!(true));
        assert_eq!(out(r#"r = "abc" < "abd";"#, &[], "r"), json!(true));
        assert_eq!(
            out(
                "r = if(x > 10, \"big\", \"small\");",
                &[("x", json!(11))],
                "r"
            ),
            json!("big")
        );
        assert_eq!(out("r = !0;", &[], "r"), json!(true));
        assert_eq!(out("r = 1 == 1.0;", &[], "r"), json!(true));
        // Short-circuit: the division by zero on the right is never reached.
        assert_eq!(out("r = false && (1 / 0);", &[], "r"), json!(false));
        assert_eq!(out("r = true || (1 / 0);", &[], "r"), json!(true));
    }

    #[test]
    fn json_bridge() {
        assert_eq!(out(r#"r = parse_json("[1,2]")[0];"#, &[], "r"), json!(1));
        assert_eq!(
            out(r#"r = to_json({"k": 1});"#, &[], "r"),
            json!(r#"{"k":1}"#)
        );
    }

    #[test]
    fn numeric_builtins() {
        assert_eq!(out("r = min(3, 1, 2);", &[], "r"), json!(1));
        assert_eq!(out("r = max(3, 1, 2);", &[], "r"), json!(3));
        assert_eq!(out("r = abs(-4);", &[], "r"), json!(4));
        assert_eq!(
            out("r = floor(2.9) + ceil(2.1) + round(2.5);", &[], "r"),
            json!(8)
        );
        assert_eq!(
            out(r#"r = num("42") + num(" 2.5 ");"#, &[], "r"),
            json!(44.5)
        );
    }

    #[test]
    fn comments_and_whitespace() {
        assert_eq!(out("# header\nr = 1; # trailing\n", &[], "r"), json!(1));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = run("let a = 1;\nr = undefined_var;", &[]).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("undefined_var"));
        let e = run("r = 1 +;", &[]).unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn runtime_errors_are_reported() {
        assert!(run("r = 1 / 0;", &[]).is_err());
        assert!(run("r = [1][5];", &[]).is_err());
        assert!(run("r = len(5);", &[]).is_err());
        assert!(run(r#"r = num("abc");"#, &[]).is_err());
        assert!(run("r = nosuchfn(1);", &[]).is_err());
        assert!(run(r#"r = "unterminated;"#, &[]).is_err());
        assert!(run("r = range(0, 1000000);", &[]).is_err());
    }

    #[test]
    fn assignments_are_visible_downstream() {
        let outputs = run("a = 2; b = a * 3;", &[]).unwrap();
        assert_eq!(outputs.get("b"), Some(&json!(6)));
    }

    #[test]
    fn paper_use_case_building_service_inputs() {
        // "create complex string inputs for services from user data"
        let code = r#"
            let header = "AMPL-DATA v1";
            let lines = join(rows, "\n");
            payload = header + "\n" + lines + "\nEND";
            rows_count = len(rows);
        "#;
        let outputs = run(code, &[("rows", json!(["a 1", "b 2"]))]).unwrap();
        assert_eq!(
            outputs.get("payload").unwrap().as_str().unwrap(),
            "AMPL-DATA v1\na 1\nb 2\nEND"
        );
        assert_eq!(outputs.get("rows_count"), Some(&json!(2)));
    }
}
