//! The workflow document model and its JSON format.

use std::error::Error;
use std::fmt;

use mathcloud_json::value::Object;
use mathcloud_json::{Schema, Value};

/// A reference to one port of one block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// The block id.
    pub block: String,
    /// The port (parameter) name on that block.
    pub port: String,
}

impl PortRef {
    /// Creates a port reference.
    pub fn new(block: &str, port: &str) -> Self {
        PortRef {
            block: block.to_string(),
            port: port.to_string(),
        }
    }
}

impl fmt::Display for PortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.block, self.port)
    }
}

/// A data-flow edge: `from` (an output port) feeds `to` (an input port).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Source output port.
    pub from: PortRef,
    /// Destination input port.
    pub to: PortRef,
}

/// The kinds of workflow blocks, as in the paper's editor (Fig 2).
#[derive(Debug, Clone, PartialEq)]
pub enum BlockKind {
    /// A workflow input parameter: one output port named `value`.
    Input {
        /// Type of the produced value.
        schema: Schema,
    },
    /// A workflow output parameter: one input port named `value`.
    Output {
        /// Type of the accepted value.
        schema: Schema,
    },
    /// A remote computational service implementing the unified REST API.
    /// Ports come from its (dynamically retrieved) description.
    Service {
        /// The service URL.
        url: String,
    },
    /// A custom action written in mcscript (the JavaScript/Python analogue).
    Script {
        /// The mcscript source. Input ports are free variables it declares
        /// in `inputs`; outputs are the names it assigns.
        code: String,
        /// Declared input ports and types.
        inputs: Vec<(String, Schema)>,
        /// Declared output ports and types.
        outputs: Vec<(String, Schema)>,
    },
    /// A constant value: one output port named `value`.
    Constant {
        /// The value produced.
        value: Value,
    },
}

/// A workflow block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Unique id within the workflow.
    pub id: String,
    /// What the block does.
    pub kind: BlockKind,
}

/// Errors from workflow document handling.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowError(pub String);

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workflow document: {}", self.0)
    }
}

impl Error for WorkflowError {}

/// A workflow: blocks plus data-flow edges, composable into a service.
///
/// # Examples
///
/// ```
/// use mathcloud_json::Schema;
/// use mathcloud_workflow::{Block, BlockKind, Edge, PortRef, Workflow};
///
/// let wf = Workflow::new("double-sum", "adds two numbers, doubles the result")
///     .block(Block { id: "a".into(), kind: BlockKind::Input { schema: Schema::integer() } })
///     .block(Block { id: "b".into(), kind: BlockKind::Input { schema: Schema::integer() } })
///     .block(Block {
///         id: "calc".into(),
///         kind: BlockKind::Script {
///             code: "result = (a + b) * 2;".into(),
///             inputs: vec![("a".into(), Schema::integer()), ("b".into(), Schema::integer())],
///             outputs: vec![("result".into(), Schema::integer())],
///         },
///     })
///     .block(Block { id: "out".into(), kind: BlockKind::Output { schema: Schema::integer() } })
///     .edge(Edge { from: PortRef::new("a", "value"), to: PortRef::new("calc", "a") })
///     .edge(Edge { from: PortRef::new("b", "value"), to: PortRef::new("calc", "b") })
///     .edge(Edge { from: PortRef::new("calc", "result"), to: PortRef::new("out", "value") });
///
/// let round_trip = Workflow::from_value(&wf.to_value()).unwrap();
/// assert_eq!(round_trip, wf);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Workflow {
    /// The workflow (and composite service) name.
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// The blocks.
    pub blocks: Vec<Block>,
    /// The data-flow edges.
    pub edges: Vec<Edge>,
}

impl Workflow {
    /// Creates an empty workflow.
    pub fn new(name: &str, description: &str) -> Self {
        Workflow {
            name: name.to_string(),
            description: description.to_string(),
            blocks: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a block (builder style).
    pub fn block(mut self, block: Block) -> Self {
        self.blocks.push(block);
        self
    }

    /// Adds an edge (builder style).
    pub fn edge(mut self, edge: Edge) -> Self {
        self.edges.push(edge);
        self
    }

    /// Convenience: adds an input block named `id`.
    pub fn input(self, id: &str, schema: Schema) -> Self {
        self.block(Block {
            id: id.to_string(),
            kind: BlockKind::Input { schema },
        })
    }

    /// Convenience: adds an output block named `id`.
    pub fn output(self, id: &str, schema: Schema) -> Self {
        self.block(Block {
            id: id.to_string(),
            kind: BlockKind::Output { schema },
        })
    }

    /// Convenience: adds a service block.
    pub fn service(self, id: &str, url: &str) -> Self {
        self.block(Block {
            id: id.to_string(),
            kind: BlockKind::Service {
                url: url.to_string(),
            },
        })
    }

    /// Convenience: adds an edge `from_block.from_port -> to_block.to_port`.
    pub fn wire(self, from: (&str, &str), to: (&str, &str)) -> Self {
        self.edge(Edge {
            from: PortRef::new(from.0, from.1),
            to: PortRef::new(to.0, to.1),
        })
    }

    /// Finds a block by id.
    pub fn find(&self, id: &str) -> Option<&Block> {
        self.blocks.iter().find(|b| b.id == id)
    }

    /// The ids of input blocks, in declaration order.
    pub fn input_ids(&self) -> Vec<&str> {
        self.blocks
            .iter()
            .filter(|b| matches!(b.kind, BlockKind::Input { .. }))
            .map(|b| b.id.as_str())
            .collect()
    }

    /// The ids of output blocks, in declaration order.
    pub fn output_ids(&self) -> Vec<&str> {
        self.blocks
            .iter()
            .filter(|b| matches!(b.kind, BlockKind::Output { .. }))
            .map(|b| b.id.as_str())
            .collect()
    }

    /// Serializes to the JSON workflow format.
    pub fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("name".into(), Value::from(self.name.as_str()));
        o.insert("description".into(), Value::from(self.description.as_str()));
        let blocks: Vec<Value> = self.blocks.iter().map(block_to_value).collect();
        o.insert("blocks".into(), Value::Array(blocks));
        let edges: Vec<Value> = self
            .edges
            .iter()
            .map(|e| {
                let mut eo = Object::new();
                eo.insert("from".into(), Value::from(e.from.to_string()));
                eo.insert("to".into(), Value::from(e.to.to_string()));
                Value::Object(eo)
            })
            .collect();
        o.insert("edges".into(), Value::Array(edges));
        Value::Object(o)
    }

    /// Parses the JSON workflow format.
    ///
    /// # Errors
    ///
    /// [`WorkflowError`] naming the malformed element.
    pub fn from_value(v: &Value) -> Result<Self, WorkflowError> {
        let name = v
            .str_field("name")
            .ok_or_else(|| WorkflowError("missing name".into()))?;
        let mut wf = Workflow::new(name, v.str_field("description").unwrap_or(""));
        let blocks = v
            .get("blocks")
            .and_then(Value::as_array)
            .ok_or_else(|| WorkflowError("missing blocks array".into()))?;
        for b in blocks {
            wf.blocks.push(block_from_value(b)?);
        }
        let edges = v
            .get("edges")
            .and_then(Value::as_array)
            .ok_or_else(|| WorkflowError("missing edges array".into()))?;
        for e in edges {
            let parse_ref = |field: &str| -> Result<PortRef, WorkflowError> {
                let text = e
                    .str_field(field)
                    .ok_or_else(|| WorkflowError(format!("edge missing {field}")))?;
                let (block, port) = text.split_once('.').ok_or_else(|| {
                    WorkflowError(format!("edge ref {text:?} must be block.port"))
                })?;
                Ok(PortRef::new(block, port))
            };
            wf.edges.push(Edge {
                from: parse_ref("from")?,
                to: parse_ref("to")?,
            });
        }
        Ok(wf)
    }
}

fn schema_field(o: &mut Object, schema: &Schema) {
    o.insert("schema".into(), schema.to_value());
}

fn block_to_value(b: &Block) -> Value {
    let mut o = Object::new();
    o.insert("id".into(), Value::from(b.id.as_str()));
    match &b.kind {
        BlockKind::Input { schema } => {
            o.insert("kind".into(), Value::from("input"));
            schema_field(&mut o, schema);
        }
        BlockKind::Output { schema } => {
            o.insert("kind".into(), Value::from("output"));
            schema_field(&mut o, schema);
        }
        BlockKind::Service { url } => {
            o.insert("kind".into(), Value::from("service"));
            o.insert("url".into(), Value::from(url.as_str()));
        }
        BlockKind::Script {
            code,
            inputs,
            outputs,
        } => {
            o.insert("kind".into(), Value::from("script"));
            o.insert("code".into(), Value::from(code.as_str()));
            let ports = |ps: &[(String, Schema)]| {
                let mut po = Object::new();
                for (n, s) in ps {
                    po.insert(n.clone(), s.to_value());
                }
                Value::Object(po)
            };
            o.insert("inputs".into(), ports(inputs));
            o.insert("outputs".into(), ports(outputs));
        }
        BlockKind::Constant { value } => {
            o.insert("kind".into(), Value::from("constant"));
            o.insert("value".into(), value.clone());
        }
    }
    Value::Object(o)
}

fn block_from_value(v: &Value) -> Result<Block, WorkflowError> {
    let id = v
        .str_field("id")
        .ok_or_else(|| WorkflowError("block missing id".into()))?
        .to_string();
    let kind = v
        .str_field("kind")
        .ok_or_else(|| WorkflowError(format!("block {id:?} missing kind")))?;
    let schema_of = |v: &Value| -> Result<Schema, WorkflowError> {
        match v.get("schema") {
            Some(s) => {
                Schema::from_value(s).map_err(|e| WorkflowError(format!("block {id:?}: {e}")))
            }
            None => Ok(Schema::any()),
        }
    };
    let kind = match kind {
        "input" => BlockKind::Input {
            schema: schema_of(v)?,
        },
        "output" => BlockKind::Output {
            schema: schema_of(v)?,
        },
        "service" => BlockKind::Service {
            url: v
                .str_field("url")
                .ok_or_else(|| WorkflowError(format!("service block {id:?} missing url")))?
                .to_string(),
        },
        "script" => {
            let code = v
                .str_field("code")
                .ok_or_else(|| WorkflowError(format!("script block {id:?} missing code")))?
                .to_string();
            let ports = |field: &str| -> Result<Vec<(String, Schema)>, WorkflowError> {
                let mut out = Vec::new();
                if let Some(obj) = v.get(field).and_then(Value::as_object) {
                    for (name, schema_doc) in obj.iter() {
                        let schema = Schema::from_value(schema_doc).map_err(|e| {
                            WorkflowError(format!("block {id:?} port {name:?}: {e}"))
                        })?;
                        out.push((name.clone(), schema));
                    }
                }
                Ok(out)
            };
            BlockKind::Script {
                code,
                inputs: ports("inputs")?,
                outputs: ports("outputs")?,
            }
        }
        "constant" => BlockKind::Constant {
            value: v.get("value").cloned().unwrap_or(Value::Null),
        },
        other => return Err(WorkflowError(format!("unknown block kind {other:?}"))),
    };
    Ok(Block { id, kind })
}

impl Block {
    /// Input port names with their schemas (services resolve theirs later).
    pub fn declared_inputs(&self) -> Vec<(String, Schema)> {
        match &self.kind {
            BlockKind::Input { .. } | BlockKind::Constant { .. } => Vec::new(),
            BlockKind::Output { schema } => vec![("value".to_string(), schema.clone())],
            BlockKind::Service { .. } => Vec::new(),
            BlockKind::Script { inputs, .. } => inputs.clone(),
        }
    }

    /// Output port names with their schemas (services resolve theirs later).
    pub fn declared_outputs(&self) -> Vec<(String, Schema)> {
        match &self.kind {
            BlockKind::Input { schema } => vec![("value".to_string(), schema.clone())],
            BlockKind::Constant { .. } => vec![("value".to_string(), Schema::any())],
            BlockKind::Output { .. } => Vec::new(),
            BlockKind::Service { .. } => Vec::new(),
            BlockKind::Script { outputs, .. } => outputs.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathcloud_json::json;

    fn sample() -> Workflow {
        Workflow::new("wf", "sample")
            .input("x", Schema::integer())
            .block(Block {
                id: "c".into(),
                kind: BlockKind::Constant { value: json!(10) },
            })
            .block(Block {
                id: "s".into(),
                kind: BlockKind::Script {
                    code: "y = x + k;".into(),
                    inputs: vec![
                        ("x".into(), Schema::integer()),
                        ("k".into(), Schema::integer()),
                    ],
                    outputs: vec![("y".into(), Schema::integer())],
                },
            })
            .service("svc", "http://h:1/services/f")
            .output("y", Schema::integer())
            .wire(("x", "value"), ("s", "x"))
            .wire(("c", "value"), ("s", "k"))
            .wire(("s", "y"), ("y", "value"))
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let wf = sample();
        let doc = wf.to_value();
        let text = doc.to_pretty_string();
        let parsed = Workflow::from_value(&mathcloud_json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, wf);
    }

    #[test]
    fn lookup_helpers() {
        let wf = sample();
        assert_eq!(wf.input_ids(), ["x"]);
        assert_eq!(wf.output_ids(), ["y"]);
        assert!(wf.find("svc").is_some());
        assert!(wf.find("missing").is_none());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            json!({}),
            json!({"name": "w"}),
            json!({"name": "w", "blocks": [], "edges": [{"from": "a"}]}),
            json!({"name": "w", "blocks": [], "edges": [{"from": "a.b", "to": "noport"}]}),
            json!({"name": "w", "blocks": [{"id": "b", "kind": "alien"}], "edges": []}),
            json!({"name": "w", "blocks": [{"kind": "input"}], "edges": []}),
            json!({"name": "w", "blocks": [{"id": "s", "kind": "service"}], "edges": []}),
        ] {
            assert!(Workflow::from_value(&bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn declared_ports_by_kind() {
        let wf = sample();
        assert_eq!(wf.find("x").unwrap().declared_outputs()[0].0, "value");
        assert_eq!(wf.find("y").unwrap().declared_inputs()[0].0, "value");
        assert_eq!(wf.find("s").unwrap().declared_inputs().len(), 2);
        assert_eq!(wf.find("c").unwrap().declared_outputs().len(), 1);
        assert!(
            wf.find("svc").unwrap().declared_inputs().is_empty(),
            "resolved later"
        );
    }
}
