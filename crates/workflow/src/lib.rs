//! The MathCloud workflow management system (§3.3, Fig 2 of the paper).
//!
//! Workflows are directed acyclic graphs whose vertices are *blocks* — input
//! and output ports of the composite service, remote computational services,
//! and custom script actions — and whose edges define typed data flow. The
//! crate provides:
//!
//! * [`model`] — the workflow document model with its JSON format (the
//!   editor's "download as JSON, edit, upload" feature),
//! * [`script`] — **mcscript**, the small expression language replacing the
//!   paper's JavaScript/Python custom actions (lexer → parser → evaluator),
//! * [`mod@validate`] — structural and port-type validation, exactly the checks
//!   the graphical editor performs while wiring blocks,
//! * [`engine`] — a parallel runtime executing ready blocks concurrently and
//!   exposing live per-block state (the editor's coloring feature),
//! * [`wms`] — the workflow management service: stores workflows and
//!   publishes each as a new composite service in an Everest container.
//!
//! # Examples
//!
//! A workflow computing `(a + b)` via a remote service, doubled by a script
//! block, is built in [`model::Workflow`]'s docs; see `tests/` for complete
//! engine runs against live containers.

pub mod engine;
pub mod model;
pub mod script;
pub mod validate;
pub mod wms;

pub use engine::{BlockRun, Engine, EngineError, HttpCaller, RunHandle, ServiceCaller};
pub use model::{Block, BlockKind, Edge, PortRef, Workflow, WorkflowError};
pub use script::{run_script, ScriptError};
pub use validate::{
    validate, DescriptionSource, HttpDescriptions, ValidatedWorkflow, ValidationIssue,
};
pub use wms::WorkflowService;
