//! The workflow execution engine.
//!
//! Executes a validated workflow, running every data-ready block
//! concurrently (the source of the paper's Table 2 speedups) and exposing
//! live per-block state — the information the graphical editor renders by
//! "painting each workflow block in the color corresponding to its current
//! state" (§3.3).

use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use mathcloud_core::{JobRepresentation, JobState};
use mathcloud_http::{Client, Method, Request};
use mathcloud_json::value::Object;
use mathcloud_json::Value;
use mathcloud_telemetry::sync::{Mutex, RwLock};
use mathcloud_telemetry::{metrics, trace};

use crate::model::BlockKind;
use crate::script::run_script;
use crate::validate::ValidatedWorkflow;

/// Live state of one block during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockRun {
    /// Waiting for upstream data.
    Waiting,
    /// Executing.
    Running,
    /// Finished successfully.
    Done,
    /// Finished with an error.
    Failed,
}

/// An engine failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A workflow input value was not provided.
    MissingInput(String),
    /// A block failed; the workflow is aborted.
    BlockFailed {
        /// The failing block id.
        block: String,
        /// The failure reason.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::MissingInput(name) => write!(f, "missing workflow input {name:?}"),
            EngineError::BlockFailed { block, reason } => {
                write!(f, "block {block:?} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Publishes a `workflow.block.*` transition on the process-wide event bus,
/// mirroring what the graphical editor paints: the colour change of one
/// block. Subscribers get pushed transitions instead of polling
/// [`RunHandle::block_states`].
fn publish_block_event(
    kind: &str,
    workflow: &str,
    block: &str,
    request_id: Option<&str>,
    error: Option<&str>,
) {
    let mut payload = Object::new();
    payload.insert("workflow".into(), Value::from(workflow));
    payload.insert("block".into(), Value::from(block));
    if let Some(e) = error {
        payload.insert("error".into(), Value::from(e));
    }
    mathcloud_events::global().publish(kind, request_id, Value::Object(payload));
}

/// Invokes remote computational services for `Service` blocks.
pub trait ServiceCaller: Send + Sync {
    /// Submits `inputs` to the service at `url` and blocks until the job is
    /// terminal, returning its outputs.
    ///
    /// # Errors
    ///
    /// A human-readable reason on submission or job failure.
    fn call(&self, url: &str, inputs: &Object) -> Result<Object, String>;

    /// [`ServiceCaller::call`] carrying the workflow run's originating
    /// request id, so one `X-MC-Request-Id` correlates the whole fan-out:
    /// workflow submission → every block → every downstream service job.
    ///
    /// The default discards the id and delegates to `call`, keeping existing
    /// implementations valid; callers that can propagate it (like
    /// [`HttpCaller`]) override this instead.
    ///
    /// # Errors
    ///
    /// See [`ServiceCaller::call`].
    fn call_traced(
        &self,
        url: &str,
        inputs: &Object,
        request_id: Option<&str>,
    ) -> Result<Object, String> {
        let _ = request_id;
        self.call(url, inputs)
    }
}

/// The production caller: POST to submit, then subscribe to the container's
/// `GET /events` stream and wait for the job's terminal `job.*` event,
/// falling back to the poll loop described in §2 of the paper when the
/// server predates `/events` or the stream drops.
#[derive(Debug, Clone)]
pub struct HttpCaller {
    client: Client,
    poll_interval: Duration,
}

/// How long a push subscription waits for a terminal event before the
/// caller reverts to polling. The fallback makes this a liveness bound, not
/// a job deadline: jobs outlasting it are still seen to completion.
const WATCH_WINDOW: Duration = Duration::from_secs(3600);

impl Default for HttpCaller {
    fn default() -> Self {
        HttpCaller::new(Duration::from_millis(20))
    }
}

impl HttpCaller {
    /// Creates a caller with the given job-polling interval.
    ///
    /// The default client is the fault-tolerant transport: connects are
    /// bounded by a connect timeout and `GET` polls are retried with backoff
    /// on transport failure. The `POST` submission carries a fresh
    /// `Idempotency-Key`, so it is retried too — a replayed submission is
    /// answered with the original job instead of duplicating it.
    pub fn new(poll_interval: Duration) -> Self {
        HttpCaller {
            client: Client::new(),
            poll_interval,
        }
    }

    /// Replaces the HTTP client (builder style) — e.g. to tighten deadlines
    /// or the retry policy for a particular deployment.
    pub fn with_client(mut self, client: Client) -> Self {
        self.client = client;
        self
    }
}

impl ServiceCaller for HttpCaller {
    fn call(&self, url: &str, inputs: &Object) -> Result<Object, String> {
        self.call_traced(url, inputs, None)
    }

    fn call_traced(
        &self,
        url: &str,
        inputs: &Object,
        request_id: Option<&str>,
    ) -> Result<Object, String> {
        let base: mathcloud_http::Url = url.parse().map_err(|e| format!("{e}"))?;
        // Attach the enclosing block's request id to the submission (and to
        // every poll), so the downstream container records its job under the
        // same id instead of minting a fresh one at its server edge.
        let attach = |req: Request| match request_id {
            Some(rid) => req.with_header(trace::REQUEST_ID_HEADER, rid),
            None => req,
        };
        // Subscribe *before* submitting: a fast job's terminal event can be
        // published between the submit response and a later subscription,
        // and a live-only stream would never replay it. An error here (old
        // server, transport) simply leaves the poll loop to do all the work.
        let push = mathcloud_http::sse::subscribe(
            &base,
            "job.",
            None,
            Duration::from_secs(10),
            mathcloud_http::sse::DEFAULT_HEARTBEAT,
        )
        .ok();
        // Every engine call mints a fresh Idempotency-Key for its one
        // submission: the transport may now retry the POST on failure (the
        // container answers a replay with the original job), so a dropped
        // submit response no longer double-runs the downstream job.
        let idem_key = trace::next_request_id();
        let submit_req = attach(
            Request::new(Method::Post, &base.target())
                .with_json(&Value::Object(inputs.clone()))
                .with_header(mathcloud_http::IDEMPOTENCY_KEY_HEADER, &idem_key),
        );
        let submit = self
            .client
            .send(&base, submit_req)
            .map_err(|e| e.to_string())?;
        if !submit.status.is_success() {
            return Err(format!(
                "{} from {url}: {}",
                submit.status,
                submit.body_string()
            ));
        }
        let mut rep =
            JobRepresentation::from_value(&submit.body_json().map_err(|e| e.to_string())?)?;
        if let (Some(stream), false) = (push, rep.state.is_terminal()) {
            if let Some(service) = mathcloud_http::sse::service_segment(&rep.uri) {
                let deadline = std::time::Instant::now() + WATCH_WINDOW;
                let watched = mathcloud_http::sse::watch_job_on(
                    &base,
                    stream,
                    service,
                    rep.id.as_str(),
                    deadline,
                );
                if matches!(watched, mathcloud_http::sse::WatchResult::Terminal(_)) {
                    // One refresh fetches the terminal representation with
                    // its outputs; the loop below returns without polling.
                    let poll_url = base.with_target(&rep.uri);
                    let poll_req = attach(Request::new(Method::Get, &poll_url.target()));
                    let resp = self
                        .client
                        .send(&poll_url, poll_req)
                        .map_err(|e| e.to_string())?;
                    if resp.status.is_success() {
                        rep = JobRepresentation::from_value(
                            &resp.body_json().map_err(|e| e.to_string())?,
                        )?;
                    }
                }
            }
        }
        loop {
            match rep.state {
                JobState::Done => {
                    return Ok(rep.outputs.unwrap_or_default());
                }
                JobState::Failed => {
                    return Err(rep.error.unwrap_or_else(|| "job failed".to_string()))
                }
                JobState::Cancelled => return Err("job was cancelled".to_string()),
                JobState::Waiting | JobState::Running => {
                    std::thread::sleep(self.poll_interval);
                    let poll_url = base.with_target(&rep.uri);
                    let poll_req = attach(Request::new(Method::Get, &poll_url.target()));
                    let resp = self
                        .client
                        .send(&poll_url, poll_req)
                        .map_err(|e| e.to_string())?;
                    if !resp.status.is_success() {
                        return Err(format!("{} polling {}", resp.status, poll_url.target()));
                    }
                    rep = JobRepresentation::from_value(
                        &resp.body_json().map_err(|e| e.to_string())?,
                    )?;
                }
            }
        }
    }
}

/// A handle on a running workflow instance.
///
/// The editor polls [`RunHandle::block_states`] to color blocks; callers get
/// the result from [`RunHandle::wait`].
pub struct RunHandle {
    states: Arc<RwLock<HashMap<String, BlockRun>>>,
    result: mpsc::Receiver<Result<Object, EngineError>>,
}

impl RunHandle {
    /// Snapshot of every block's state.
    pub fn block_states(&self) -> HashMap<String, BlockRun> {
        self.states.read().clone()
    }

    /// State of one block.
    pub fn block_state(&self, id: &str) -> Option<BlockRun> {
        self.states.read().get(id).copied()
    }

    /// Blocks until the run finishes.
    ///
    /// # Errors
    ///
    /// [`EngineError`] if any block failed.
    pub fn wait(self) -> Result<Object, EngineError> {
        self.result.recv().unwrap_or(Err(EngineError::BlockFailed {
            block: "<engine>".into(),
            reason: "engine thread disappeared".into(),
        }))
    }
}

impl fmt::Debug for RunHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunHandle").finish()
    }
}

/// The workflow engine: a validated workflow plus a service caller.
pub struct Engine {
    validated: Arc<ValidatedWorkflow>,
    caller: Arc<dyn ServiceCaller>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("workflow", &self.validated.workflow.name)
            .finish()
    }
}

impl Engine {
    /// Creates an engine with the production HTTP caller.
    pub fn new(validated: ValidatedWorkflow) -> Self {
        Engine::with_caller(validated, HttpCaller::default())
    }

    /// Creates an engine with a custom caller (tests, in-process calls).
    pub fn with_caller<C: ServiceCaller + 'static>(
        validated: ValidatedWorkflow,
        caller: C,
    ) -> Self {
        Engine {
            validated: Arc::new(validated),
            caller: Arc::new(caller),
        }
    }

    /// Runs the workflow to completion.
    ///
    /// # Errors
    ///
    /// [`EngineError`] when inputs are missing or a block fails.
    pub fn run(&self, inputs: &Object) -> Result<Object, EngineError> {
        self.start(inputs)?.wait()
    }

    /// [`Engine::run`] tagged with the originating request id, which flows
    /// into every block span and downstream service call.
    ///
    /// # Errors
    ///
    /// [`EngineError`] when inputs are missing or a block fails.
    pub fn run_traced(
        &self,
        inputs: &Object,
        request_id: Option<&str>,
    ) -> Result<Object, EngineError> {
        self.start_traced(inputs, request_id)?.wait()
    }

    /// Starts an asynchronous run.
    ///
    /// # Errors
    ///
    /// [`EngineError::MissingInput`] when a workflow input is not supplied.
    pub fn start(&self, inputs: &Object) -> Result<RunHandle, EngineError> {
        self.start_traced(inputs, None)
    }

    /// [`Engine::start`] tagged with the originating request id.
    ///
    /// # Errors
    ///
    /// [`EngineError::MissingInput`] when a workflow input is not supplied.
    pub fn start_traced(
        &self,
        inputs: &Object,
        request_id: Option<&str>,
    ) -> Result<RunHandle, EngineError> {
        // Check inputs up front.
        for id in self.validated.workflow.input_ids() {
            if inputs.get(id).is_none() {
                return Err(EngineError::MissingInput(id.to_string()));
            }
        }
        let states: Arc<RwLock<HashMap<String, BlockRun>>> = Arc::new(RwLock::new(
            self.validated
                .workflow
                .blocks
                .iter()
                .map(|b| (b.id.clone(), BlockRun::Waiting))
                .collect(),
        ));
        let (result_tx, result_rx) = mpsc::channel();
        let validated = Arc::clone(&self.validated);
        let caller = Arc::clone(&self.caller);
        let run_states = Arc::clone(&states);
        let inputs = inputs.clone();
        let request_id = request_id.map(str::to_string);
        std::thread::spawn(move || {
            let outcome = execute(
                &validated,
                &caller,
                &run_states,
                &inputs,
                request_id.as_deref(),
            );
            let _ = result_tx.send(outcome);
        });
        Ok(RunHandle {
            states,
            result: result_rx,
        })
    }
}

/// Values produced so far, keyed by `(block, port)`.
type PortValues = HashMap<(String, String), Value>;
/// Port values produced by one block.
type Produced = Vec<((String, String), Value)>;
/// One block's completion message: its id plus produced port values.
type BlockDone = (String, Result<Produced, String>);

fn execute(
    validated: &Arc<ValidatedWorkflow>,
    caller: &Arc<dyn ServiceCaller>,
    states: &Arc<RwLock<HashMap<String, BlockRun>>>,
    request_inputs: &Object,
    request_id: Option<&str>,
) -> Result<Object, EngineError> {
    let wf = &validated.workflow;
    // Port values produced so far.
    let values: Arc<Mutex<PortValues>> = Arc::new(Mutex::new(HashMap::new()));
    // Remaining unsatisfied incoming edges per block.
    let mut indeg: HashMap<String, usize> = wf.blocks.iter().map(|b| (b.id.clone(), 0)).collect();
    for e in &wf.edges {
        *indeg.get_mut(&e.to.block).expect("validated edge") += 1;
    }

    let (done_tx, done_rx) = mpsc::channel::<BlockDone>();
    let mut failed: Option<EngineError> = None;

    let spawn_block = |id: &str, done_tx: &mpsc::Sender<BlockDone>| {
        states.write().insert(id.to_string(), BlockRun::Running);
        publish_block_event("workflow.block.running", &wf.name, id, request_id, None);
        let id = id.to_string();
        let validated = Arc::clone(validated);
        let caller = Arc::clone(caller);
        let values = Arc::clone(&values);
        let request_inputs = request_inputs.clone();
        let request_id = request_id.map(str::to_string);
        let done_tx = done_tx.clone();
        std::thread::spawn(move || {
            let result = run_block(
                &validated,
                &caller,
                &values,
                &request_inputs,
                request_id.as_deref(),
                &id,
            );
            let _ = done_tx.send((id, result));
        });
    };

    // Kick off source blocks, then keep exactly one counter: blocks spawned
    // but not yet reported. After a failure no new blocks start, so the
    // in-flight set drains naturally and the loop exits.
    let mut inflight = 0usize;
    let ready: Vec<String> = wf
        .blocks
        .iter()
        .filter(|b| indeg[&b.id] == 0)
        .map(|b| b.id.clone())
        .collect();
    for id in ready {
        spawn_block(&id, &done_tx);
        inflight += 1;
    }

    while inflight > 0 {
        let (id, outcome) = done_rx.recv().expect("block threads hold a sender");
        inflight -= 1;
        match outcome {
            Ok(produced) => {
                states.write().insert(id.clone(), BlockRun::Done);
                publish_block_event("workflow.block.done", &wf.name, &id, request_id, None);
                {
                    let mut vals = values.lock();
                    for (port, value) in produced {
                        vals.insert(port, value);
                    }
                }
                // Unlock successors.
                for e in &wf.edges {
                    if e.from.block == id {
                        let d = indeg.get_mut(&e.to.block).expect("validated edge");
                        *d -= 1;
                        if *d == 0 && failed.is_none() {
                            spawn_block(&e.to.block, &done_tx);
                            inflight += 1;
                        }
                    }
                }
            }
            Err(reason) => {
                states.write().insert(id.clone(), BlockRun::Failed);
                publish_block_event(
                    "workflow.block.failed",
                    &wf.name,
                    &id,
                    request_id,
                    Some(&reason),
                );
                if failed.is_none() {
                    failed = Some(EngineError::BlockFailed { block: id, reason });
                }
            }
        }
    }

    if let Some(e) = failed {
        return Err(e);
    }

    // Collect output block values.
    let vals = values.lock();
    let mut outputs = Object::new();
    for b in &wf.blocks {
        if matches!(b.kind, BlockKind::Output { .. }) {
            let v = vals
                .get(&(b.id.clone(), "value".to_string()))
                .cloned()
                .unwrap_or(Value::Null);
            outputs.insert(b.id.clone(), v);
        }
    }
    Ok(outputs)
}

fn run_block(
    validated: &ValidatedWorkflow,
    caller: &Arc<dyn ServiceCaller>,
    values: &Arc<Mutex<PortValues>>,
    request_inputs: &Object,
    request_id: Option<&str>,
    id: &str,
) -> Result<Produced, String> {
    let wf = &validated.workflow;
    let block = wf.find(id).expect("validated block");

    // Gather this block's input-port values from incoming edges.
    let mut port_inputs = Object::new();
    {
        let vals = values.lock();
        for e in &wf.edges {
            if e.to.block == id {
                let v = vals
                    .get(&(e.from.block.clone(), e.from.port.clone()))
                    .cloned()
                    .ok_or_else(|| format!("internal: value for {} missing", e.from))?;
                port_inputs.insert(e.to.port.clone(), v);
            }
        }
    }

    let kind_label = match &block.kind {
        BlockKind::Input { .. } => "input",
        BlockKind::Constant { .. } => "constant",
        BlockKind::Output { .. } => "output",
        BlockKind::Script { .. } => "script",
        BlockKind::Service { .. } => "service",
    };
    let mut span = trace::span("workflow.block", request_id);
    span.field("block", id);
    span.field("kind", kind_label);
    let started = std::time::Instant::now();

    let out = |port: &str, v: Value| ((id.to_string(), port.to_string()), v);
    let result = (move || match &block.kind {
        BlockKind::Input { schema } => {
            let v = request_inputs
                .get(id)
                .cloned()
                .ok_or_else(|| format!("missing workflow input {id:?}"))?;
            if let Err(errs) = schema.validate(&v) {
                return Err(format!("input {id:?}: {}", errs[0]));
            }
            Ok(vec![out("value", v)])
        }
        BlockKind::Constant { value } => Ok(vec![out("value", value.clone())]),
        BlockKind::Output { .. } => {
            let v = port_inputs
                .get("value")
                .cloned()
                .ok_or_else(|| "output block received no value".to_string())?;
            Ok(vec![out("value", v)])
        }
        BlockKind::Script { code, outputs, .. } => {
            let produced = run_script(code, &port_inputs).map_err(|e| e.to_string())?;
            let mut result = Vec::new();
            for (name, _) in outputs {
                let v = produced
                    .get(name)
                    .cloned()
                    .ok_or_else(|| format!("script did not assign output {name:?}"))?;
                result.push(out(name, v));
            }
            Ok(result)
        }
        BlockKind::Service { url } => {
            // Fill declared optional defaults the description provides.
            let description = validated.services.get(id).expect("validated service");
            let body = Value::Object(port_inputs);
            let effective = description
                .validate_inputs(&body)
                .map_err(|e| e.to_string())?;
            let outputs = caller.call_traced(url, &effective, request_id)?;
            Ok(outputs.into_iter().map(|(name, v)| out(&name, v)).collect())
        }
    })();
    metrics::global()
        .histogram("mc_workflow_block_seconds", &[("kind", kind_label)])
        .observe_duration(started.elapsed());
    span.field("outcome", if result.is_ok() { "done" } else { "failed" });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Block, Workflow};
    use crate::validate::validate;
    use mathcloud_core::{Parameter, ServiceDescription};
    use mathcloud_json::{json, Schema};

    /// An in-process caller with controllable behaviour.
    struct MockCaller;

    impl ServiceCaller for MockCaller {
        fn call(&self, url: &str, inputs: &Object) -> Result<Object, String> {
            match url {
                "mock://sum" => {
                    let a = inputs.get("a").and_then(Value::as_i64).unwrap_or(0);
                    let b = inputs.get("b").and_then(Value::as_i64).unwrap_or(0);
                    Ok([("total".to_string(), json!(a + b))].into_iter().collect())
                }
                "mock://slow-double" => {
                    std::thread::sleep(Duration::from_millis(60));
                    let x = inputs.get("x").and_then(Value::as_i64).unwrap_or(0);
                    Ok([("y".to_string(), json!(x * 2))].into_iter().collect())
                }
                "mock://fail" => Err("deliberate failure".to_string()),
                other => Err(format!("unknown mock {other}")),
            }
        }
    }

    fn descriptions() -> HashMap<String, ServiceDescription> {
        let sum = ServiceDescription::new("sum", "")
            .input(Parameter::new("a", Schema::integer()))
            .input(Parameter::new("b", Schema::integer()))
            .output(Parameter::new("total", Schema::integer()));
        let double = ServiceDescription::new("double", "")
            .input(Parameter::new("x", Schema::integer()))
            .output(Parameter::new("y", Schema::integer()));
        let fail = ServiceDescription::new("fail", "")
            .input(Parameter::new("x", Schema::any()))
            .output(Parameter::new("y", Schema::any()));
        [
            ("mock://sum".to_string(), sum),
            ("mock://slow-double".to_string(), double),
            ("mock://fail".to_string(), fail),
        ]
        .into_iter()
        .collect()
    }

    fn engine(wf: &Workflow) -> Engine {
        let v = validate(wf, &descriptions()).expect("workflow should validate");
        Engine::with_caller(v, MockCaller)
    }

    #[test]
    fn linear_workflow_produces_outputs() {
        let wf = Workflow::new("w", "")
            .input("a", Schema::integer())
            .input("b", Schema::integer())
            .service("add", "mock://sum")
            .output("sum", Schema::integer())
            .wire(("a", "value"), ("add", "a"))
            .wire(("b", "value"), ("add", "b"))
            .wire(("add", "total"), ("sum", "value"));
        let inputs: Object = [("a".to_string(), json!(19)), ("b".to_string(), json!(23))]
            .into_iter()
            .collect();
        let outputs = engine(&wf).run(&inputs).unwrap();
        assert_eq!(outputs.get("sum"), Some(&json!(42)));
    }

    #[test]
    fn independent_branches_run_in_parallel() {
        // Two slow services in parallel should take ~1x the latency, not 2x.
        let wf = Workflow::new("w", "")
            .input("x", Schema::integer())
            .service("d1", "mock://slow-double")
            .service("d2", "mock://slow-double")
            .block(Block {
                id: "merge".into(),
                kind: BlockKind::Script {
                    code: "sum = a + b;".into(),
                    inputs: vec![
                        ("a".into(), Schema::integer()),
                        ("b".into(), Schema::integer()),
                    ],
                    outputs: vec![("sum".into(), Schema::integer())],
                },
            })
            .output("r", Schema::integer())
            .wire(("x", "value"), ("d1", "x"))
            .wire(("x", "value"), ("d2", "x"))
            .wire(("d1", "y"), ("merge", "a"))
            .wire(("d2", "y"), ("merge", "b"))
            .wire(("merge", "sum"), ("r", "value"));
        let inputs: Object = [("x".to_string(), json!(5))].into_iter().collect();
        let t0 = std::time::Instant::now();
        let outputs = engine(&wf).run(&inputs).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(outputs.get("r"), Some(&json!(20)));
        assert!(
            elapsed < Duration::from_millis(115),
            "not parallel: {elapsed:?}"
        );
    }

    #[test]
    fn block_states_are_observable() {
        let wf = Workflow::new("w", "")
            .input("x", Schema::integer())
            .service("d1", "mock://slow-double")
            .output("r", Schema::integer())
            .wire(("x", "value"), ("d1", "x"))
            .wire(("d1", "y"), ("r", "value"));
        let inputs: Object = [("x".to_string(), json!(1))].into_iter().collect();
        let handle = engine(&wf).start(&inputs).unwrap();
        // While the slow service runs, its block should be RUNNING.
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(handle.block_state("d1"), Some(BlockRun::Running));
        let outputs = handle.wait().unwrap();
        assert_eq!(outputs.get("r"), Some(&json!(2)));
    }

    #[test]
    fn failures_abort_with_block_attribution() {
        let wf = Workflow::new("w", "")
            .input("x", Schema::integer())
            .service("boom", "mock://fail")
            .output("r", Schema::any())
            .wire(("x", "value"), ("boom", "x"))
            .wire(("boom", "y"), ("r", "value"));
        let inputs: Object = [("x".to_string(), json!(1))].into_iter().collect();
        let err = engine(&wf).run(&inputs).unwrap_err();
        match err {
            EngineError::BlockFailed { block, reason } => {
                assert_eq!(block, "boom");
                assert!(reason.contains("deliberate failure"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_inputs_fail_before_starting() {
        let wf = Workflow::new("w", "")
            .input("x", Schema::integer())
            .output("r", Schema::integer())
            .wire(("x", "value"), ("r", "value"));
        let err = engine(&wf).run(&Object::new()).unwrap_err();
        assert_eq!(err, EngineError::MissingInput("x".into()));
    }

    #[test]
    fn input_values_are_validated_against_schemas() {
        let wf = Workflow::new("w", "")
            .input("x", Schema::integer())
            .output("r", Schema::integer())
            .wire(("x", "value"), ("r", "value"));
        let inputs: Object = [("x".to_string(), json!("not a number"))]
            .into_iter()
            .collect();
        let err = engine(&wf).run(&inputs).unwrap_err();
        assert!(matches!(err, EngineError::BlockFailed { .. }));
    }

    #[test]
    fn run_traced_hands_the_request_id_to_every_service_call() {
        /// Records the request id each `call_traced` receives, then answers
        /// like [`MockCaller`].
        #[derive(Clone)]
        struct RecordingCaller {
            seen: Arc<Mutex<Vec<Option<String>>>>,
        }

        impl ServiceCaller for RecordingCaller {
            fn call(&self, url: &str, inputs: &Object) -> Result<Object, String> {
                self.call_traced(url, inputs, None)
            }

            fn call_traced(
                &self,
                url: &str,
                inputs: &Object,
                request_id: Option<&str>,
            ) -> Result<Object, String> {
                self.seen.lock().push(request_id.map(String::from));
                MockCaller.call(url, inputs)
            }
        }

        let wf = Workflow::new("w", "")
            .input("a", Schema::integer())
            .input("b", Schema::integer())
            .service("add", "mock://sum")
            .output("sum", Schema::integer())
            .wire(("a", "value"), ("add", "a"))
            .wire(("b", "value"), ("add", "b"))
            .wire(("add", "total"), ("sum", "value"));
        let v = validate(&wf, &descriptions()).unwrap();
        let caller = RecordingCaller {
            seen: Arc::new(Mutex::new(Vec::new())),
        };
        let engine = Engine::with_caller(v, caller.clone());
        let inputs: Object = [("a".to_string(), json!(1)), ("b".to_string(), json!(2))]
            .into_iter()
            .collect();

        engine.run_traced(&inputs, Some("wf-rid-7")).unwrap();
        assert_eq!(caller.seen.lock().as_slice(), &[Some("wf-rid-7".into())]);

        // Untraced runs still reach the caller, with no id attached.
        engine.run(&inputs).unwrap();
        assert_eq!(caller.seen.lock().last(), Some(&None));
    }

    #[test]
    fn http_caller_attaches_request_id_to_submit_and_poll() {
        use mathcloud_core::JobId;
        use mathcloud_http::{PathParams, Response, Router, Server};

        // A one-job service: submission returns WAITING, the first poll
        // returns DONE. Both handlers record the request id they were given.
        let seen: Arc<Mutex<Vec<Option<String>>>> = Arc::new(Mutex::new(Vec::new()));
        let mut router = Router::new();
        let record = Arc::clone(&seen);
        router.post("/services/sum/jobs", move |r: &Request, _p: &PathParams| {
            record
                .lock()
                .push(r.headers.get(trace::REQUEST_ID_HEADER).map(String::from));
            let rep = JobRepresentation::new(
                JobId::new("j1"),
                "/services/sum/jobs/j1",
                JobState::Waiting,
            );
            Response::json(202, &rep.to_value())
        });
        let record = Arc::clone(&seen);
        router.get(
            "/services/sum/jobs/j1",
            move |r: &Request, _p: &PathParams| {
                record
                    .lock()
                    .push(r.headers.get(trace::REQUEST_ID_HEADER).map(String::from));
                let mut rep = JobRepresentation::new(
                    JobId::new("j1"),
                    "/services/sum/jobs/j1",
                    JobState::Done,
                );
                rep.outputs = Some([("total".to_string(), json!(42))].into_iter().collect());
                Response::json(200, &rep.to_value())
            },
        );
        let server = Server::bind("127.0.0.1:0", router).expect("bind");

        let caller = HttpCaller::new(Duration::from_millis(2));
        let inputs: Object = [("a".to_string(), json!(40)), ("b".to_string(), json!(2))]
            .into_iter()
            .collect();
        let url = format!("{}/services/sum/jobs", server.base_url());
        let outputs = caller
            .call_traced(&url, &inputs, Some("rid-wf-42"))
            .unwrap();
        assert_eq!(outputs.get("total"), Some(&json!(42)));

        // The server edge mints a fresh id when none arrives, so equality
        // with ours proves the header crossed the wire on both requests.
        let seen = seen.lock().clone();
        assert_eq!(seen.len(), 2, "one submit + one poll, got {seen:?}");
        for rid in &seen {
            assert_eq!(rid.as_deref(), Some("rid-wf-42"));
        }
    }

    #[test]
    fn constants_and_scripts_work_without_services() {
        let wf = Workflow::new("w", "")
            .block(Block {
                id: "k".into(),
                kind: BlockKind::Constant { value: json!(10) },
            })
            .input("x", Schema::integer())
            .block(Block {
                id: "calc".into(),
                kind: BlockKind::Script {
                    code: "y = x * k;".into(),
                    inputs: vec![
                        ("x".into(), Schema::integer()),
                        ("k".into(), Schema::integer()),
                    ],
                    outputs: vec![("y".into(), Schema::integer())],
                },
            })
            .output("r", Schema::integer())
            .wire(("x", "value"), ("calc", "x"))
            .wire(("k", "value"), ("calc", "k"))
            .wire(("calc", "y"), ("r", "value"));
        let inputs: Object = [("x".to_string(), json!(4))].into_iter().collect();
        let outputs = engine(&wf).run(&inputs).unwrap();
        assert_eq!(outputs.get("r"), Some(&json!(40)));
    }
}
