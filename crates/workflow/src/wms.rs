//! The workflow management service (WMS).
//!
//! "The WMS performs storage, deployment and execution of workflows created
//! with the described editor. In accordance with the service-oriented
//! approach the WMS deploys each saved workflow as a new service" (§3.3).
//!
//! [`WorkflowService`] keeps a store of workflow documents and publishes each
//! one into an Everest container as a *composite service*: the service's
//! inputs/outputs are the workflow's Input/Output blocks, and executing a job
//! runs the workflow engine. Because the WMS rides on Everest, it is itself a
//! RESTful web service — extra routes expose workflow upload/download (the
//! "download workflow in JSON format, edit it manually and upload back"
//! feature).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use mathcloud_core::{Parameter, ServiceDescription};
use mathcloud_everest::adapter::NativeAdapter;
use mathcloud_everest::Everest;
use mathcloud_http::{PathParams, Request, Response, Router};
use mathcloud_json::value::Object;
#[cfg(test)]
use mathcloud_json::Schema;
use mathcloud_json::Value;
use mathcloud_telemetry::sync::RwLock;

use crate::engine::{Engine, ServiceCaller};
use crate::model::{BlockKind, Workflow};
use crate::validate::{validate, DescriptionSource, ValidatedWorkflow};

/// The workflow management service.
#[derive(Clone)]
pub struct WorkflowService {
    everest: Everest,
    store: Arc<RwLock<HashMap<String, Workflow>>>,
    caller_factory: Arc<dyn Fn() -> Arc<dyn ServiceCaller> + Send + Sync>,
    descriptions: Arc<dyn DescriptionSource + Send + Sync>,
}

impl fmt::Debug for WorkflowService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkflowService")
            .field("workflows", &self.store.read().len())
            .finish()
    }
}

impl WorkflowService {
    /// Creates a WMS deploying composite services into `everest`, resolving
    /// service descriptions and calling services over HTTP.
    pub fn new(everest: Everest) -> Self {
        WorkflowService::with_backends(everest, crate::validate::HttpDescriptions::new(), || {
            Arc::new(crate::engine::HttpCaller::default())
        })
    }

    /// Creates a WMS with custom description and caller backends (tests,
    /// in-process execution).
    pub fn with_backends<D, F>(everest: Everest, descriptions: D, caller_factory: F) -> Self
    where
        D: DescriptionSource + Send + Sync + 'static,
        F: Fn() -> Arc<dyn ServiceCaller> + Send + Sync + 'static,
    {
        WorkflowService {
            everest,
            store: Arc::new(RwLock::new(HashMap::new())),
            caller_factory: Arc::new(caller_factory),
            descriptions: Arc::new(descriptions),
        }
    }

    /// The underlying container.
    pub fn container(&self) -> &Everest {
        &self.everest
    }

    /// Validates and publishes a workflow as a composite service named after
    /// the workflow. Returns the composite service name.
    ///
    /// # Errors
    ///
    /// The validation issues, pre-rendered as strings.
    pub fn publish(&self, workflow: &Workflow) -> Result<String, Vec<String>> {
        let validated = validate(workflow, self.descriptions.as_ref()).map_err(|issues| {
            issues
                .into_iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
        })?;
        let description = composite_description(&validated);
        let caller = (self.caller_factory)();
        let engine = Engine::with_caller(validated, SharedCaller(caller));
        let engine = Arc::new(engine);
        self.everest.deploy(
            description,
            NativeAdapter::from_fn(move |inputs: &Object, ctx| {
                // The composite job's request id rides along into every
                // constituent block and downstream service call.
                engine
                    .run_traced(inputs, ctx.request_id())
                    .map_err(|e| e.to_string())
            }),
        );
        self.store
            .write()
            .insert(workflow.name.clone(), workflow.clone());
        Ok(workflow.name.clone())
    }

    /// Fetches a stored workflow document.
    pub fn get(&self, name: &str) -> Option<Workflow> {
        self.store.read().get(name).cloned()
    }

    /// Lists stored workflow names.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.store.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Removes a workflow and undeploys its composite service.
    pub fn remove(&self, name: &str) -> bool {
        let removed = self.store.write().remove(name).is_some();
        if removed {
            self.everest.undeploy(name);
        }
        removed
    }

    /// Adds the WMS's own REST routes to a router:
    ///
    /// * `GET /workflows` — names,
    /// * `GET /workflows/{name}` — the JSON document (editor download),
    /// * `PUT /workflows/{name}` — upload/replace and republish,
    /// * `DELETE /workflows/{name}` — remove.
    pub fn mount(&self, router: &mut Router) {
        let wms = self.clone();
        router.get("/workflows", move |_req, _p| {
            let names: Vec<Value> = wms.list().into_iter().map(Value::from).collect();
            Response::json(200, &Value::Array(names))
        });

        let wms = self.clone();
        router.get("/workflows/{name}", move |_req, p: &PathParams| {
            let name = p.get("name").expect("route has {name}");
            match wms.get(name) {
                Some(wf) => Response::json(200, &wf.to_value()),
                None => Response::error(404, "no such workflow"),
            }
        });

        let wms = self.clone();
        router.put("/workflows/{name}", move |req: &Request, p: &PathParams| {
            let name = p.get("name").expect("route has {name}");
            let doc = match req.body_json() {
                Ok(v) => v,
                Err(e) => return Response::error(400, &format!("bad json: {e}")),
            };
            let mut wf = match Workflow::from_value(&doc) {
                Ok(wf) => wf,
                Err(e) => return Response::error(400, &e.to_string()),
            };
            wf.name = name.to_string();
            match wms.publish(&wf) {
                Ok(service) => {
                    let uri = mathcloud_core::uri::service(&service);
                    Response::json(
                        201,
                        &mathcloud_json::json!({ "service": service, "uri": uri }),
                    )
                }
                Err(issues) => {
                    let items: Vec<Value> = issues.into_iter().map(Value::from).collect();
                    Response::json(400, &mathcloud_json::json!({ "errors": items }))
                }
            }
        });

        let wms = self.clone();
        router.delete("/workflows/{name}", move |_req, p: &PathParams| {
            let name = p.get("name").expect("route has {name}");
            if wms.remove(name) {
                Response::empty(204)
            } else {
                Response::error(404, "no such workflow")
            }
        });
    }
}

/// Adapter: `Arc<dyn ServiceCaller>` as a `ServiceCaller`.
struct SharedCaller(Arc<dyn ServiceCaller>);

impl ServiceCaller for SharedCaller {
    fn call(&self, url: &str, inputs: &Object) -> Result<Object, String> {
        self.0.call(url, inputs)
    }

    fn call_traced(
        &self,
        url: &str,
        inputs: &Object,
        request_id: Option<&str>,
    ) -> Result<Object, String> {
        self.0.call_traced(url, inputs, request_id)
    }
}

/// Derives the composite service description from a validated workflow:
/// Input blocks become service inputs, Output blocks become outputs.
fn composite_description(validated: &ValidatedWorkflow) -> ServiceDescription {
    let wf = &validated.workflow;
    let mut desc = ServiceDescription::new(&wf.name, &wf.description)
        .tag("workflow")
        .tag("composite");
    for b in &wf.blocks {
        match &b.kind {
            BlockKind::Input { schema } => {
                desc = desc.input(Parameter::new(&b.id, schema.clone()));
            }
            BlockKind::Output { schema } => {
                desc = desc.output(Parameter::new(&b.id, schema.clone()));
            }
            _ => {}
        }
    }
    desc
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathcloud_json::json;
    use std::time::Duration;

    struct MockCaller;

    impl ServiceCaller for MockCaller {
        fn call(&self, url: &str, inputs: &Object) -> Result<Object, String> {
            match url {
                "mock://inc" => {
                    let x = inputs.get("x").and_then(Value::as_i64).unwrap_or(0);
                    Ok([("y".to_string(), json!(x + 1))].into_iter().collect())
                }
                other => Err(format!("unknown mock {other}")),
            }
        }
    }

    fn descriptions() -> HashMap<String, ServiceDescription> {
        let inc = ServiceDescription::new("inc", "")
            .input(Parameter::new("x", Schema::integer()))
            .output(Parameter::new("y", Schema::integer()));
        [("mock://inc".to_string(), inc)].into_iter().collect()
    }

    fn wms() -> WorkflowService {
        let everest = Everest::new("wms-host");
        WorkflowService::with_backends(everest, descriptions(), || Arc::new(MockCaller))
    }

    fn inc_twice() -> Workflow {
        Workflow::new("inc-twice", "increments twice")
            .input("n", Schema::integer())
            .service("first", "mock://inc")
            .service("second", "mock://inc")
            .output("result", Schema::integer())
            .wire(("n", "value"), ("first", "x"))
            .wire(("first", "y"), ("second", "x"))
            .wire(("second", "y"), ("result", "value"))
    }

    #[test]
    fn published_workflow_becomes_a_composite_service() {
        let wms = wms();
        let name = wms.publish(&inc_twice()).unwrap();
        assert_eq!(name, "inc-twice");

        // The composite service advertises the workflow's ports.
        let desc = wms.container().description("inc-twice").unwrap();
        assert_eq!(desc.inputs()[0].name(), "n");
        assert_eq!(desc.outputs()[0].name(), "result");
        assert!(desc.tags().contains(&"composite".to_string()));

        // Executing the composite service runs the DAG.
        let rep = wms
            .container()
            .submit_sync("inc-twice", &json!({"n": 40}), None, Duration::from_secs(5))
            .unwrap();
        assert_eq!(
            rep.outputs.unwrap().get("result").unwrap().as_i64(),
            Some(42)
        );
    }

    #[test]
    fn invalid_workflows_are_rejected_at_publish() {
        let wms = wms();
        let broken = Workflow::new("broken", "")
            .input("n", Schema::integer())
            .service("first", "mock://inc")
            .output("r", Schema::integer())
            // first.x is never wired.
            .wire(("first", "y"), ("r", "value"));
        let errs = wms.publish(&broken).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("first.x")), "{errs:?}");
        assert!(wms.container().description("broken").is_none());
    }

    #[test]
    fn store_listing_and_removal() {
        let wms = wms();
        wms.publish(&inc_twice()).unwrap();
        assert_eq!(wms.list(), ["inc-twice"]);
        assert!(wms.get("inc-twice").is_some());
        assert!(wms.remove("inc-twice"));
        assert!(wms.list().is_empty());
        assert!(wms.container().description("inc-twice").is_none());
        assert!(!wms.remove("inc-twice"));
    }

    #[test]
    fn rest_upload_download_round_trip() {
        let wms = wms();
        let mut router = Router::new();
        wms.mount(&mut router);
        let server = mathcloud_http::Server::bind("127.0.0.1:0", router).unwrap();
        let base = server.base_url();
        let client = mathcloud_http::Client::new();

        // Upload (publish) via PUT.
        let url: mathcloud_http::Url = format!("{base}/workflows/inc-twice").parse().unwrap();
        let req = mathcloud_http::Request::new(mathcloud_http::Method::Put, "/workflows/inc-twice")
            .with_json(&inc_twice().to_value());
        let resp = client.send(&url, req).unwrap();
        assert_eq!(resp.status.as_u16(), 201, "{}", resp.body_string());

        // Download, compare.
        let doc = client
            .get(&format!("{base}/workflows/inc-twice"))
            .unwrap()
            .body_json()
            .unwrap();
        assert_eq!(Workflow::from_value(&doc).unwrap(), inc_twice());

        // Listing + delete.
        let list = client
            .get(&format!("{base}/workflows"))
            .unwrap()
            .body_json()
            .unwrap();
        assert_eq!(list[0].as_str(), Some("inc-twice"));
        assert_eq!(
            client
                .delete(&format!("{base}/workflows/inc-twice"))
                .unwrap()
                .status
                .as_u16(),
            204
        );
        assert_eq!(
            client
                .get(&format!("{base}/workflows/inc-twice"))
                .unwrap()
                .status
                .as_u16(),
            404
        );
    }

    #[test]
    fn rest_upload_of_invalid_workflow_reports_errors() {
        let wms = wms();
        let mut router = Router::new();
        wms.mount(&mut router);
        let server = mathcloud_http::Server::bind("127.0.0.1:0", router).unwrap();
        let base = server.base_url();
        let client = mathcloud_http::Client::new();
        let broken = Workflow::new("x", "")
            .service("s", "mock://missing")
            .to_value();
        let url: mathcloud_http::Url = format!("{base}/workflows/x").parse().unwrap();
        let req = mathcloud_http::Request::new(mathcloud_http::Method::Put, "/workflows/x")
            .with_json(&broken);
        let resp = client.send(&url, req).unwrap();
        assert_eq!(resp.status.as_u16(), 400);
        assert!(resp.body_json().unwrap()["errors"].as_array().is_some());
    }
}
