//! A gLite-like grid middleware, simulated on top of [`mathcloud_cluster`].
//!
//! The paper's Grid adapter "performs translation of service request into a
//! grid job submitted to the European Grid Infrastructure, which is based on
//! gLite middleware" (§3.1). This crate provides the pieces that adapter
//! needs:
//!
//! * [`ProxyCredential`] — time-limited, VO-scoped user proxies,
//! * [`ComputingElement`] — a site batch system exported to one or more
//!   virtual organizations, with a data-staging latency,
//! * [`ResourceBroker`] — the workload management system: matchmaking over
//!   CEs, ranking by free capacity, job submission/monitoring/cancellation.
//!
//! # Examples
//!
//! ```
//! use mathcloud_cluster::BatchSystem;
//! use mathcloud_grid::{ComputingElement, GridJobSpec, ProxyCredential, ResourceBroker};
//! use std::time::Duration;
//!
//! let ce = ComputingElement::new(
//!     "ce.example.org",
//!     &["mathcloud-vo"],
//!     BatchSystem::builder("site").node("wn-0", 4).build(),
//! );
//! let broker = ResourceBroker::new(vec![ce]);
//! let proxy = ProxyCredential::issue("CN=alice", "mathcloud-vo", Duration::from_secs(600));
//! let id = broker
//!     .submit(&proxy, GridJobSpec::new("hello", 1, |_| Ok("done".into())))
//!     .unwrap();
//! let st = broker.wait(id, Duration::from_secs(5)).unwrap();
//! assert_eq!(st.output.as_deref(), Some("done"));
//! ```

use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use mathcloud_cluster::{BatchSystem, JobContext, JobSpec, JobState as ClusterState};

/// A time-limited grid proxy credential, scoped to one virtual organization.
///
/// Stands in for a gLite VOMS proxy: the trust mechanics are simulated (see
/// DESIGN.md), the authorization semantics — expiry and VO membership — are
/// real.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyCredential {
    /// The user's distinguished name.
    pub user_dn: String,
    /// The virtual organization the proxy is valid for.
    pub vo: String,
    /// Expiry (Unix seconds).
    pub expires: u64,
}

impl ProxyCredential {
    /// Issues a proxy valid for `ttl` from now.
    pub fn issue(user_dn: &str, vo: &str, ttl: Duration) -> Self {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_secs();
        ProxyCredential {
            user_dn: user_dn.to_string(),
            vo: vo.to_string(),
            expires: now + ttl.as_secs(),
        }
    }

    /// Returns `true` while the proxy has not expired.
    pub fn is_valid(&self) -> bool {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_secs();
        now < self.expires
    }
}

/// A grid site: one batch system exported to a set of VOs.
#[derive(Clone)]
pub struct ComputingElement {
    name: String,
    vos: Vec<String>,
    cluster: BatchSystem,
    stage_in_delay: Duration,
}

impl ComputingElement {
    /// Creates a CE with no staging latency.
    pub fn new(name: &str, vos: &[&str], cluster: BatchSystem) -> Self {
        ComputingElement {
            name: name.to_string(),
            vos: vos.iter().map(|v| v.to_string()).collect(),
            cluster,
            stage_in_delay: Duration::ZERO,
        }
    }

    /// Sets the simulated input-staging latency (builder style). Real grid
    /// sites pay a transfer cost before a job starts; the Grid adapter's
    /// overhead measurements include it.
    pub fn with_stage_in_delay(mut self, delay: Duration) -> Self {
        self.stage_in_delay = delay;
        self
    }

    /// The CE host name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns `true` if this CE accepts jobs from `vo`.
    pub fn supports_vo(&self, vo: &str) -> bool {
        self.vos.iter().any(|v| v == vo)
    }

    /// Free cores right now (the broker's ranking expression).
    pub fn free_cores(&self) -> usize {
        let stats = self.cluster.stats();
        stats.total_cores.saturating_sub(stats.busy_cores)
    }
}

impl fmt::Debug for ComputingElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComputingElement")
            .field("name", &self.name)
            .field("vos", &self.vos)
            .field("free_cores", &self.free_cores())
            .finish()
    }
}

/// The work function of a grid job.
pub type GridTask = Box<dyn FnOnce(&JobContext) -> Result<String, String> + Send + 'static>;

/// A grid job submission.
pub struct GridJobSpec {
    name: String,
    cores: usize,
    task: GridTask,
}

impl GridJobSpec {
    /// Creates a grid job requesting `cores` cores on one site.
    pub fn new<F>(name: &str, cores: usize, task: F) -> Self
    where
        F: FnOnce(&JobContext) -> Result<String, String> + Send + 'static,
    {
        GridJobSpec {
            name: name.to_string(),
            cores,
            task: Box::new(task),
        }
    }
}

impl fmt::Debug for GridJobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GridJobSpec")
            .field("name", &self.name)
            .field("cores", &self.cores)
            .finish()
    }
}

/// A grid job handle: which CE it landed on plus the site-local id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridJobId {
    ce_index: usize,
    local: mathcloud_cluster::JobId,
}

/// Grid-level job states (the gLite job state machine, condensed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridJobState {
    /// Matched to a CE, waiting in the site queue.
    Scheduled,
    /// Executing (staging counts as running, as in gLite accounting).
    Running,
    /// Finished successfully.
    Done,
    /// Failed at the site.
    Aborted,
    /// Cancelled by the user.
    Cancelled,
}

impl GridJobState {
    /// Returns `true` for states that will never change again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            GridJobState::Done | GridJobState::Aborted | GridJobState::Cancelled
        )
    }
}

/// A point-in-time view of a grid job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridJobStatus {
    /// Grid-level state.
    pub state: GridJobState,
    /// The CE the job was matched to.
    pub ce: String,
    /// Job output (when `Done`).
    pub output: Option<String>,
    /// Failure reason (when `Aborted`).
    pub error: Option<String>,
}

/// Errors from broker submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// The proxy has expired.
    ProxyExpired,
    /// No CE supports the requested VO.
    NoSiteForVo(String),
    /// CEs support the VO but none has a large-enough node.
    NoMatchingResources {
        /// Cores requested.
        requested: usize,
    },
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::ProxyExpired => write!(f, "proxy credential expired"),
            BrokerError::NoSiteForVo(vo) => write!(f, "no computing element supports vo {vo:?}"),
            BrokerError::NoMatchingResources { requested } => {
                write!(f, "no computing element can run a {requested}-core job")
            }
        }
    }
}

impl Error for BrokerError {}

/// The workload management system: matchmaking + submission.
#[derive(Clone)]
pub struct ResourceBroker {
    ces: Arc<Vec<ComputingElement>>,
}

impl ResourceBroker {
    /// Creates a broker over a set of computing elements.
    ///
    /// # Panics
    ///
    /// Panics if `ces` is empty.
    pub fn new(ces: Vec<ComputingElement>) -> Self {
        assert!(
            !ces.is_empty(),
            "a broker needs at least one computing element"
        );
        ResourceBroker { ces: Arc::new(ces) }
    }

    /// The registered computing elements.
    pub fn computing_elements(&self) -> &[ComputingElement] {
        &self.ces
    }

    /// Submits a job: validates the proxy, matches CEs by VO and capacity,
    /// ranks by free cores and submits to the best site.
    ///
    /// # Errors
    ///
    /// [`BrokerError`] when the proxy is invalid or no site matches.
    pub fn submit(
        &self,
        proxy: &ProxyCredential,
        spec: GridJobSpec,
    ) -> Result<GridJobId, BrokerError> {
        if !proxy.is_valid() {
            return Err(BrokerError::ProxyExpired);
        }
        let mut candidates: Vec<usize> = (0..self.ces.len())
            .filter(|&i| self.ces[i].supports_vo(&proxy.vo))
            .collect();
        if candidates.is_empty() {
            return Err(BrokerError::NoSiteForVo(proxy.vo.clone()));
        }
        // Rank: most free cores first (gLite's default Rank expression uses
        // free slots).
        candidates.sort_by_key(|&i| std::cmp::Reverse(self.ces[i].free_cores()));

        // Matchmaking picks the best-ranked site; the job is bound to it
        // (gLite does not silently resubmit elsewhere — failures surface to
        // the user, who may resubmit).
        let chosen = candidates[0];
        let task = spec.task;
        let stage = self.ces[chosen].stage_in_delay;
        let wrapped = move |ctx: &JobContext| {
            if !stage.is_zero() {
                std::thread::sleep(stage);
            }
            if ctx.should_stop() {
                return Err("cancelled during staging".to_string());
            }
            task(ctx)
        };
        match self.ces[chosen]
            .cluster
            .try_qsub(JobSpec::new(&spec.name, spec.cores, wrapped))
        {
            Ok(local) => Ok(GridJobId {
                ce_index: chosen,
                local,
            }),
            Err(_) => Err(BrokerError::NoMatchingResources {
                requested: spec.cores,
            }),
        }
    }

    /// Queries a grid job.
    pub fn status(&self, id: GridJobId) -> Option<GridJobStatus> {
        let ce = self.ces.get(id.ce_index)?;
        let st = ce.cluster.qstat(id.local)?;
        Some(GridJobStatus {
            state: map_state(st.state),
            ce: ce.name().to_string(),
            output: st.output,
            error: st.error,
        })
    }

    /// Cancels a grid job.
    pub fn cancel(&self, id: GridJobId) -> bool {
        self.ces
            .get(id.ce_index)
            .map(|ce| ce.cluster.qdel(id.local))
            .unwrap_or(false)
    }

    /// Blocks until the job reaches a terminal state or `timeout` elapses.
    ///
    /// Returns `None` both when the job is unknown (never submitted, or its
    /// record was removed) **and** when the timeout elapses with the job
    /// still non-terminal — callers that loop on `wait` must distinguish the
    /// two via [`ResourceBroker::status`] or they will spin forever on a
    /// vanished job.
    pub fn wait(&self, id: GridJobId, timeout: Duration) -> Option<GridJobStatus> {
        let ce = self.ces.get(id.ce_index)?;
        let st = ce.cluster.wait(id.local, timeout)?;
        Some(GridJobStatus {
            state: map_state(st.state),
            ce: ce.name().to_string(),
            output: st.output,
            error: st.error,
        })
    }
}

impl fmt::Debug for ResourceBroker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResourceBroker")
            .field("ces", &self.ces.len())
            .finish()
    }
}

fn map_state(s: ClusterState) -> GridJobState {
    match s {
        ClusterState::Queued => GridJobState::Scheduled,
        ClusterState::Running => GridJobState::Running,
        ClusterState::Completed => GridJobState::Done,
        ClusterState::Exited => GridJobState::Aborted,
        ClusterState::Cancelled => GridJobState::Cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(name: &str, vos: &[&str], cores: usize) -> ComputingElement {
        ComputingElement::new(
            name,
            vos,
            BatchSystem::builder(name).node("wn", cores).build(),
        )
    }

    fn proxy(vo: &str) -> ProxyCredential {
        ProxyCredential::issue("CN=alice", vo, Duration::from_secs(600))
    }

    #[test]
    fn submits_to_supported_vo_only() {
        let broker = ResourceBroker::new(vec![site("ce1", &["bio-vo"], 2)]);
        let err = broker
            .submit(
                &proxy("math-vo"),
                GridJobSpec::new("j", 1, |_| Ok(String::new())),
            )
            .unwrap_err();
        assert_eq!(err, BrokerError::NoSiteForVo("math-vo".into()));
        assert!(broker
            .submit(
                &proxy("bio-vo"),
                GridJobSpec::new("j", 1, |_| Ok(String::new()))
            )
            .is_ok());
    }

    #[test]
    fn expired_proxy_is_rejected() {
        let broker = ResourceBroker::new(vec![site("ce1", &["vo"], 2)]);
        let mut p = proxy("vo");
        p.expires = 0;
        let err = broker
            .submit(&p, GridJobSpec::new("j", 1, |_| Ok(String::new())))
            .unwrap_err();
        assert_eq!(err, BrokerError::ProxyExpired);
    }

    #[test]
    fn ranking_prefers_the_freest_site() {
        let busy = site("busy-ce", &["vo"], 2);
        // Occupy the busy site.
        let _blocker = busy.cluster.qsub(JobSpec::new("blocker", 2, |_| {
            std::thread::sleep(Duration::from_millis(200));
            Ok(String::new())
        }));
        std::thread::sleep(Duration::from_millis(30));
        let free = site("free-ce", &["vo"], 2);
        let broker = ResourceBroker::new(vec![busy, free]);
        let id = broker
            .submit(
                &proxy("vo"),
                GridJobSpec::new("j", 1, |_| Ok(String::new())),
            )
            .unwrap();
        let st = broker.wait(id, Duration::from_secs(5)).unwrap();
        assert_eq!(st.ce, "free-ce");
        assert_eq!(st.state, GridJobState::Done);
    }

    /// `wait` returning `None` is ambiguous by design: timeout on a live job
    /// versus a job the broker has no record of. Callers tell them apart
    /// with `status` — this pins the contract the Everest adapters rely on.
    #[test]
    fn wait_none_is_disambiguated_by_status() {
        let broker = ResourceBroker::new(vec![site("ce", &["vo"], 1)]);
        let id = broker
            .submit(
                &proxy("vo"),
                GridJobSpec::new("slow", 1, |_| {
                    std::thread::sleep(Duration::from_millis(200));
                    Ok(String::new())
                }),
            )
            .unwrap();
        // Timeout on a live job: wait is None but the record still exists.
        assert!(broker.wait(id, Duration::from_millis(10)).is_none());
        assert!(broker.status(id).is_some());
        assert!(broker.wait(id, Duration::from_secs(5)).is_some());

        // A broker that never saw the job: both are None.
        let stranger = ResourceBroker::new(vec![site("other", &["vo"], 1)]);
        assert!(stranger.status(id).is_none());
        assert!(stranger.wait(id, Duration::from_millis(10)).is_none());
    }

    #[test]
    fn staging_delay_is_paid_before_the_task() {
        let ce = site("ce", &["vo"], 1).with_stage_in_delay(Duration::from_millis(80));
        let broker = ResourceBroker::new(vec![ce]);
        let t0 = std::time::Instant::now();
        let id = broker
            .submit(&proxy("vo"), GridJobSpec::new("j", 1, |_| Ok("x".into())))
            .unwrap();
        let st = broker.wait(id, Duration::from_secs(5)).unwrap();
        assert_eq!(st.state, GridJobState::Done);
        assert!(
            t0.elapsed() >= Duration::from_millis(80),
            "{:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn failures_map_to_aborted() {
        let broker = ResourceBroker::new(vec![site("ce", &["vo"], 1)]);
        let id = broker
            .submit(
                &proxy("vo"),
                GridJobSpec::new("j", 1, |_| Err("segfault".into())),
            )
            .unwrap();
        let st = broker.wait(id, Duration::from_secs(5)).unwrap();
        assert_eq!(st.state, GridJobState::Aborted);
        assert_eq!(st.error.as_deref(), Some("segfault"));
    }

    #[test]
    fn oversized_requests_fail_matchmaking() {
        let broker = ResourceBroker::new(vec![site("ce", &["vo"], 2)]);
        let err = broker
            .submit(
                &proxy("vo"),
                GridJobSpec::new("wide", 16, |_| Ok(String::new())),
            )
            .unwrap_err();
        assert_eq!(err, BrokerError::NoMatchingResources { requested: 16 });
    }

    #[test]
    fn cancellation_reaches_the_site() {
        let broker = ResourceBroker::new(vec![site("ce", &["vo"], 1)]);
        let id = broker
            .submit(
                &proxy("vo"),
                GridJobSpec::new("loop", 1, |ctx| {
                    while !ctx.should_stop() {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err("stopped".into())
                }),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert!(broker.cancel(id));
        let st = broker.wait(id, Duration::from_secs(5)).unwrap();
        assert_eq!(st.state, GridJobState::Cancelled);
    }

    #[test]
    fn status_of_unknown_job_is_none() {
        let broker = ResourceBroker::new(vec![site("ce", &["vo"], 1)]);
        // A handle pointing at a CE index this broker does not have.
        let foreign = GridJobId {
            ce_index: 9,
            local: {
                let c = BatchSystem::builder("x").node("n", 1).build();
                c.qsub(JobSpec::new("j", 1, |_| Ok(String::new())))
            },
        };
        assert!(broker.status(foreign).is_none());
        assert!(!broker.cancel(foreign));
    }
}
