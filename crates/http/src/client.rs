//! A blocking HTTP/1.1 client.

use std::error::Error;
use std::fmt;
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::time::Duration;

use mathcloud_json::Value;

use crate::message::{Method, Request, Response};
use crate::url::{Url, UrlError};
use crate::wire;

/// Errors from client operations.
#[derive(Debug)]
pub enum ClientError {
    /// The URL could not be parsed.
    Url(UrlError),
    /// Connection or transfer failure.
    Io(std::io::Error),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Url(e) => write!(f, "{e}"),
            ClientError::Io(e) => write!(f, "http i/o error: {e}"),
        }
    }
}

impl Error for ClientError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClientError::Url(e) => Some(e),
            ClientError::Io(e) => Some(e),
        }
    }
}

impl From<UrlError> for ClientError {
    fn from(e: UrlError) -> Self {
        ClientError::Url(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking HTTP client.
///
/// Each call opens a fresh connection; use [`Client::connect`] to hold a
/// keep-alive [`Connection`] for request sequences (the workflow engine polls
/// job resources this way).
///
/// # Examples
///
/// ```no_run
/// use mathcloud_http::Client;
/// use mathcloud_json::json;
///
/// # fn main() -> Result<(), mathcloud_http::ClientError> {
/// let client = Client::new();
/// let resp = client.post_json("http://localhost:9000/services/sum", &json!({"a": 2, "b": 3}))?;
/// assert!(resp.status.is_success());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Client {
    timeout: Duration,
    /// Extra headers attached to every request (e.g. auth tokens).
    default_headers: Vec<(String, String)>,
}

impl Default for Client {
    fn default() -> Self {
        Client::new()
    }
}

impl Client {
    /// Creates a client with a 30-second I/O timeout.
    pub fn new() -> Self {
        Client {
            timeout: Duration::from_secs(30),
            default_headers: Vec::new(),
        }
    }

    /// Sets the per-operation I/O timeout (builder style).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Attaches a header to every request sent by this client (builder
    /// style) — the security layer uses this for credentials.
    pub fn with_default_header(mut self, name: &str, value: &str) -> Self {
        self.default_headers
            .push((name.to_string(), value.to_string()));
        self
    }

    /// Sends `GET url`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on bad URLs or transport failure; HTTP error statuses
    /// are returned as normal responses.
    pub fn get(&self, url: &str) -> Result<Response, ClientError> {
        let url: Url = url.parse()?;
        self.send(&url, Request::new(Method::Get, &url.target()))
    }

    /// Sends `DELETE url`.
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn delete(&self, url: &str) -> Result<Response, ClientError> {
        let url: Url = url.parse()?;
        self.send(&url, Request::new(Method::Delete, &url.target()))
    }

    /// Sends `POST url` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn post_json(&self, url: &str, body: &Value) -> Result<Response, ClientError> {
        let url: Url = url.parse()?;
        self.send(
            &url,
            Request::new(Method::Post, &url.target()).with_json(body),
        )
    }

    /// Sends `POST url` with an arbitrary body and content type.
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn post_bytes(
        &self,
        url: &str,
        content_type: &str,
        body: Vec<u8>,
    ) -> Result<Response, ClientError> {
        let url: Url = url.parse()?;
        let mut req = Request::new(Method::Post, &url.target());
        req.body = body;
        req.headers.set("Content-Type", content_type);
        self.send(&url, req)
    }

    /// Sends an explicit request to `url`'s authority on a fresh connection.
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn send(&self, url: &Url, req: Request) -> Result<Response, ClientError> {
        let mut conn = self.connect(url)?;
        let mut req = req;
        req.headers.set("Connection", "close");
        conn.send(req)
    }

    /// Opens a keep-alive connection to `url`'s authority.
    ///
    /// # Errors
    ///
    /// Connection failures surface as [`ClientError::Io`].
    pub fn connect(&self, url: &Url) -> Result<Connection, ClientError> {
        let stream = TcpStream::connect((url.host(), url.port()))?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            host: url.authority(),
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            default_headers: self.default_headers.clone(),
        })
    }
}

/// A keep-alive connection to one server.
pub struct Connection {
    host: String,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    default_headers: Vec<(String, String)>,
}

impl Connection {
    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`ClientError::Io`].
    pub fn send(&mut self, mut req: Request) -> Result<Response, ClientError> {
        for (name, value) in &self.default_headers {
            if !req.headers.contains(name) {
                req.headers.set(name, value);
            }
        }
        wire::write_request(&mut self.writer, &req, &self.host)?;
        Ok(wire::read_response(&mut self.reader)?)
    }
}

impl fmt::Debug for Connection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Connection")
            .field("host", &self.host)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_url_is_reported() {
        let err = Client::new().get("not a url").unwrap_err();
        assert!(matches!(err, ClientError::Url(_)));
        assert!(err.to_string().contains("invalid url"));
    }

    #[test]
    fn connection_refused_is_io_error() {
        // Port 1 on localhost is essentially never listening.
        let err = Client::new().get("http://127.0.0.1:1/x").unwrap_err();
        assert!(matches!(err, ClientError::Io(_)));
    }

    #[test]
    fn default_headers_are_attached() {
        use crate::router::PathParams;
        use crate::{Response, Router, Server};
        let mut router = Router::new();
        router.get("/h", |r: &Request, _p: &PathParams| {
            Response::text(200, r.headers.get("x-token").unwrap_or("none"))
        });
        let server = Server::bind("127.0.0.1:0", router).unwrap();
        let client = Client::new().with_default_header("X-Token", "secret");
        let resp = client.get(&format!("{}/h", server.base_url())).unwrap();
        assert_eq!(resp.body_string(), "secret");
    }
}
