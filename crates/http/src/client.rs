//! A blocking HTTP/1.1 client with a fault-tolerant transport.

use std::error::Error;
use std::fmt;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mathcloud_json::Value;
use mathcloud_telemetry::rng::{splitmix64, XorShift64};
use mathcloud_telemetry::sync::Mutex;
use mathcloud_telemetry::trace;

use crate::message::{Method, Request, Response};
use crate::transport::{self, BreakerConfig, BreakerRegistry, RetryPolicy};
use crate::url::{Url, UrlError};
use crate::wire;

/// Errors from client operations.
#[derive(Debug)]
pub enum ClientError {
    /// The URL could not be parsed.
    Url(UrlError),
    /// Connection or transfer failure.
    Io(std::io::Error),
    /// The authority's circuit breaker is open: the request was rejected
    /// without touching the network. `retry_in` is the remaining cooldown.
    CircuitOpen {
        authority: String,
        retry_in: Duration,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Url(e) => write!(f, "{e}"),
            ClientError::Io(e) => write!(f, "http i/o error: {e}"),
            ClientError::CircuitOpen {
                authority,
                retry_in,
            } => write!(
                f,
                "circuit breaker open for {authority}, retry in {retry_in:?}"
            ),
        }
    }
}

impl Error for ClientError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClientError::Url(e) => Some(e),
            ClientError::Io(e) => Some(e),
            ClientError::CircuitOpen { .. } => None,
        }
    }
}

impl From<UrlError> for ClientError {
    fn from(e: UrlError) -> Self {
        ClientError::Url(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn seed_rng() -> XorShift64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9e37_79b9_7f4a_7c15);
    let pid = std::process::id() as u64;
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    XorShift64::new(splitmix64(
        nanos ^ (pid << 32) ^ n.wrapping_mul(0xa076_1d64_78bd_642f),
    ))
}

/// A blocking HTTP client.
///
/// Each call opens a fresh connection; use [`Client::connect`] to hold a
/// keep-alive [`Connection`] for request sequences (the workflow engine polls
/// job resources this way).
///
/// The transport is fault tolerant: connects are bounded by a dedicated
/// connect timeout across all resolved addresses, transport failures on
/// idempotent requests are retried per [`RetryPolicy`] with jittered
/// exponential backoff, and every authority is guarded by a circuit breaker
/// (see [`crate::transport`]). Clones share breaker state.
///
/// # Examples
///
/// ```no_run
/// use mathcloud_http::Client;
/// use mathcloud_json::json;
///
/// # fn main() -> Result<(), mathcloud_http::ClientError> {
/// let client = Client::new();
/// let resp = client.post_json("http://localhost:9000/services/sum", &json!({"a": 2, "b": 3}))?;
/// assert!(resp.status.is_success());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Client {
    timeout: Duration,
    connect_timeout: Duration,
    retry: RetryPolicy,
    breakers: Arc<BreakerRegistry>,
    rng: Arc<Mutex<XorShift64>>,
    /// Extra headers attached to every request (e.g. auth tokens).
    default_headers: Vec<(String, String)>,
}

impl Default for Client {
    fn default() -> Self {
        Client::new()
    }
}

impl Client {
    /// Creates a client with a 30-second I/O timeout, a 10-second connect
    /// timeout, the default [`RetryPolicy`] and the default
    /// [`BreakerConfig`].
    pub fn new() -> Self {
        Client {
            timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(10),
            retry: RetryPolicy::default(),
            breakers: Arc::new(BreakerRegistry::new(BreakerConfig::default())),
            rng: Arc::new(Mutex::new(seed_rng())),
            default_headers: Vec::new(),
        }
    }

    /// Sets the per-operation I/O timeout (builder style).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the TCP connect timeout applied to every resolved address
    /// (builder style).
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Sets the retry policy (builder style). Use
    /// [`RetryPolicy::disabled`] for deadline-bounded probes that must not
    /// multiply their budget.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the circuit-breaker configuration (builder style). Resets
    /// breaker state: the client gets a fresh registry no longer shared with
    /// previous clones.
    pub fn with_breaker_config(mut self, config: BreakerConfig) -> Self {
        self.breakers = Arc::new(BreakerRegistry::new(config));
        self
    }

    /// Reseeds the backoff-jitter PRNG (builder style) — tests use this to
    /// make retry schedules reproducible.
    pub fn with_rng_seed(mut self, seed: u64) -> Self {
        self.rng = Arc::new(Mutex::new(XorShift64::new(seed)));
        self
    }

    /// Attaches a header to every request sent by this client (builder
    /// style) — the security layer uses this for credentials.
    pub fn with_default_header(mut self, name: &str, value: &str) -> Self {
        self.default_headers
            .push((name.to_string(), value.to_string()));
        self
    }

    /// The circuit-breaker registry guarding this client's authorities.
    pub fn breakers(&self) -> &BreakerRegistry {
        &self.breakers
    }

    /// Sends `GET url`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on bad URLs or transport failure; HTTP error statuses
    /// are returned as normal responses.
    pub fn get(&self, url: &str) -> Result<Response, ClientError> {
        let url: Url = url.parse()?;
        self.send(&url, Request::new(Method::Get, &url.target()))
    }

    /// Sends `DELETE url`.
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn delete(&self, url: &str) -> Result<Response, ClientError> {
        let url: Url = url.parse()?;
        self.send(&url, Request::new(Method::Delete, &url.target()))
    }

    /// Sends `POST url` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn post_json(&self, url: &str, body: &Value) -> Result<Response, ClientError> {
        let url: Url = url.parse()?;
        self.send(
            &url,
            Request::new(Method::Post, &url.target()).with_json(body),
        )
    }

    /// Sends `POST url` with an arbitrary body and content type.
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn post_bytes(
        &self,
        url: &str,
        content_type: &str,
        body: Vec<u8>,
    ) -> Result<Response, ClientError> {
        let url: Url = url.parse()?;
        let mut req = Request::new(Method::Post, &url.target());
        req.body = body;
        req.headers.set("Content-Type", content_type);
        self.send(&url, req)
    }

    /// Sends an explicit request to `url`'s authority, opening a fresh
    /// connection per attempt. Transport failures on idempotent requests are
    /// retried per the client's [`RetryPolicy`]; HTTP error statuses are
    /// successful exchanges and are never retried. Each attempt first asks
    /// the authority's circuit breaker for admission.
    ///
    /// # Errors
    ///
    /// See [`Client::get`]; additionally [`ClientError::CircuitOpen`] when
    /// the breaker rejects the call.
    pub fn send(&self, url: &Url, req: Request) -> Result<Response, ClientError> {
        let mut req = req;
        req.headers.set("Connection", "close");
        let authority = url.authority();
        let breaker = self.breakers.breaker(&authority);
        // A POST carrying an Idempotency-Key is contractually safe to
        // replay: the server answers a retry with the original job instead
        // of creating a second one, so it retries like an idempotent verb.
        let retryable = self.retry.applies_to(&req.method)
            || req.headers.contains(crate::message::IDEMPOTENCY_KEY_HEADER);
        let max_attempts = if retryable {
            self.retry.max_attempts.max(1)
        } else {
            1
        };
        let mut attempt = 1u32;
        loop {
            if let Err(retry_in) = breaker.admit() {
                return Err(ClientError::CircuitOpen {
                    authority,
                    retry_in,
                });
            }
            match self.attempt_send(url, req.clone()) {
                Ok(resp) => {
                    breaker.on_success();
                    return Ok(resp);
                }
                Err(err) => {
                    breaker.on_failure();
                    if attempt >= max_attempts {
                        return Err(err);
                    }
                    transport::record_retry(&authority);
                    let pause = {
                        let mut rng = self.rng.lock();
                        self.retry.backoff(attempt, &mut rng)
                    };
                    trace::info(
                        "http.retry",
                        None,
                        &[
                            ("authority", authority.as_str()),
                            ("attempt", &attempt.to_string()),
                            ("backoff_ms", &pause.as_millis().to_string()),
                        ],
                    );
                    std::thread::sleep(pause);
                    attempt += 1;
                }
            }
        }
    }

    fn attempt_send(&self, url: &Url, req: Request) -> Result<Response, ClientError> {
        let mut conn = self.connect(url)?;
        conn.send(req)
    }

    /// Opens a keep-alive connection to `url`'s authority, trying every
    /// resolved address under the connect timeout.
    ///
    /// Requests sent directly on the returned [`Connection`] bypass retry and
    /// breaker accounting — the keep-alive path is used for poll loops that
    /// implement their own pacing.
    ///
    /// # Errors
    ///
    /// Connection failures surface as [`ClientError::Io`].
    pub fn connect(&self, url: &Url) -> Result<Connection, ClientError> {
        let addrs = (url.host(), url.port()).to_socket_addrs()?;
        let mut last_err: Option<std::io::Error> = None;
        let mut stream: Option<TcpStream> = None;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = match stream {
            Some(s) => s,
            None => {
                return Err(ClientError::Io(last_err.unwrap_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        format!("no addresses resolved for {}", url.authority()),
                    )
                })))
            }
        };
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            host: url.authority(),
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            default_headers: self.default_headers.clone(),
        })
    }
}

/// A keep-alive connection to one server.
pub struct Connection {
    host: String,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    default_headers: Vec<(String, String)>,
}

impl Connection {
    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`ClientError::Io`].
    pub fn send(&mut self, mut req: Request) -> Result<Response, ClientError> {
        for (name, value) in &self.default_headers {
            if !req.headers.contains(name) {
                req.headers.set(name, value);
            }
        }
        wire::write_request(&mut self.writer, &req, &self.host)?;
        Ok(wire::read_response(&mut self.reader)?)
    }
}

impl fmt::Debug for Connection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Connection")
            .field("host", &self.host)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn bad_url_is_reported() {
        let err = Client::new().get("not a url").unwrap_err();
        assert!(matches!(err, ClientError::Url(_)));
        assert!(err.to_string().contains("invalid url"));
    }

    #[test]
    fn connection_refused_is_io_error() {
        // Port 1 on localhost is essentially never listening.
        let err = Client::new().get("http://127.0.0.1:1/x").unwrap_err();
        assert!(matches!(err, ClientError::Io(_)));
    }

    #[test]
    fn default_headers_are_attached() {
        use crate::router::PathParams;
        use crate::{Response, Router, Server};
        let mut router = Router::new();
        router.get("/h", |r: &Request, _p: &PathParams| {
            Response::text(200, r.headers.get("x-token").unwrap_or("none"))
        });
        let server = Server::bind("127.0.0.1:0", router).unwrap();
        let client = Client::new().with_default_header("X-Token", "secret");
        let resp = client.get(&format!("{}/h", server.base_url())).unwrap();
        assert_eq!(resp.body_string(), "secret");
    }

    /// Regression for the connect hang: a non-routable address must fail
    /// within the connect timeout, not the OS default (~2 minutes).
    #[test]
    fn connect_times_out_against_non_routable_address() {
        // TEST-NET-1 (RFC 5737) addresses are reserved and typically
        // black-holed; if the sandbox fast-fails them instead, the test
        // still passes — it only asserts an upper bound.
        let client = Client::new()
            .with_connect_timeout(Duration::from_millis(250))
            .with_timeout(Duration::from_millis(250))
            .with_retry_policy(RetryPolicy::disabled());
        let start = Instant::now();
        let err = client.get("http://192.0.2.1:81/x").unwrap_err();
        let elapsed = start.elapsed();
        assert!(matches!(err, ClientError::Io(_)), "got {err:?}");
        assert!(
            elapsed < Duration::from_secs(1),
            "connect took {elapsed:?}, timeout not applied"
        );
    }

    /// Counts connections to a socket that accepts and immediately drops, so
    /// every exchange is a transport failure.
    fn drop_server() -> (std::net::SocketAddr, std::sync::mpsc::Receiver<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                drop(conn);
                if tx.send(()).is_err() {
                    return;
                }
            }
        });
        (addr, rx)
    }

    #[test]
    fn idempotent_requests_are_retried_and_posts_are_not() {
        let (addr, hits) = drop_server();
        let client = Client::new()
            .with_retry_policy(RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(10),
                jitter: 0.0,
                retry_non_idempotent: false,
            })
            .with_rng_seed(7)
            .with_timeout(Duration::from_millis(500));

        let err = client.get(&format!("http://{addr}/x")).unwrap_err();
        assert!(matches!(err, ClientError::Io(_)));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(hits.try_iter().count(), 3, "GET should use all attempts");

        let err = client
            .post_json(&format!("http://{addr}/x"), &mathcloud_json::json!({}))
            .unwrap_err();
        assert!(matches!(err, ClientError::Io(_)));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(hits.try_iter().count(), 1, "POST must not be retried");
    }

    #[test]
    fn keyed_posts_are_retried_like_idempotent_requests() {
        let (addr, hits) = drop_server();
        let client = Client::new()
            .with_retry_policy(RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(10),
                jitter: 0.0,
                retry_non_idempotent: false,
            })
            .with_rng_seed(7)
            .with_timeout(Duration::from_millis(500));
        let url: Url = format!("http://{addr}/x").parse().unwrap();
        let req = Request::new(Method::Post, &url.target())
            .with_json(&mathcloud_json::json!({}))
            .with_header(crate::IDEMPOTENCY_KEY_HEADER, "k-1");
        let err = client.send(&url, req).unwrap_err();
        assert!(matches!(err, ClientError::Io(_)));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            hits.try_iter().count(),
            3,
            "an Idempotency-Key makes the POST safely retryable"
        );
    }

    #[test]
    fn breaker_rejects_after_threshold_without_touching_network() {
        let client = Client::new()
            .with_retry_policy(RetryPolicy::disabled())
            .with_breaker_config(BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(60),
            });
        let url = "http://127.0.0.1:1/x";
        assert!(matches!(client.get(url).unwrap_err(), ClientError::Io(_)));
        assert!(matches!(client.get(url).unwrap_err(), ClientError::Io(_)));
        // Third call is rejected by the breaker, fast and socket-free.
        let start = Instant::now();
        match client.get(url).unwrap_err() {
            ClientError::CircuitOpen {
                authority,
                retry_in,
            } => {
                assert_eq!(authority, "127.0.0.1:1");
                assert!(retry_in > Duration::from_secs(50));
            }
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(
            client.breakers().state_of("127.0.0.1:1"),
            Some(crate::transport::BreakerState::Open)
        );
    }
}
