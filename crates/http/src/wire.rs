//! HTTP/1.1 wire protocol: reading and writing messages on byte streams.

use std::io::{self, BufRead, Read, Write};

use crate::message::{Headers, Method, Request, Response, StatusCode};

/// Upper bound on header-section size, guarding against hostile peers.
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Upper bound on body size (1 GiB) — the paper reports intermediate matrix
/// payloads of hundreds of megabytes, so the limit is generous.
const MAX_BODY_BYTES: usize = 1 << 30;

/// Reads one request from a buffered stream.
///
/// Returns `Ok(None)` on a clean EOF before any bytes (client closed a
/// keep-alive connection).
///
/// # Errors
///
/// I/O errors and protocol violations are both reported as `io::Error`; the
/// caller turns violations into `400` responses where possible.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let request_line = match read_line(reader, true)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| protocol_error("missing method"))?;
    let target = parts
        .next()
        .ok_or_else(|| protocol_error("missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| protocol_error("missing http version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(protocol_error("unsupported http version"));
    }
    let headers = read_headers(reader)?;
    let body = read_body(reader, &headers)?;
    Ok(Some(Request {
        method: Method::from_token(method),
        target: target.to_string(),
        headers,
        body,
    }))
}

/// Reads one response from a buffered stream.
///
/// # Errors
///
/// I/O errors and protocol violations are both reported as `io::Error`.
pub fn read_response<R: BufRead>(reader: &mut R) -> io::Result<Response> {
    let status_line = read_line(reader, true)?.ok_or_else(|| protocol_error("empty response"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(protocol_error("unsupported http version in response"));
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| protocol_error("bad status code"))?;
    let headers = read_headers(reader)?;
    let body = read_body(reader, &headers)?;
    Ok(Response {
        status: StatusCode::from(code),
        headers,
        body,
        stream: None,
    })
}

/// Writes a request, setting `Content-Length` from the body.
pub fn write_request<W: Write>(writer: &mut W, req: &Request, host: &str) -> io::Result<()> {
    write!(writer, "{} {} HTTP/1.1\r\n", req.method, req.target)?;
    write!(writer, "Host: {host}\r\n")?;
    for (name, value) in req.headers.iter() {
        if name.eq_ignore_ascii_case("host") || name.eq_ignore_ascii_case("content-length") {
            continue;
        }
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "Content-Length: {}\r\n\r\n", req.body.len())?;
    writer.write_all(&req.body)?;
    writer.flush()
}

/// Writes the status line and headers of a streaming response — no
/// `Content-Length`, no body; the stream callback takes over the writer.
pub fn write_stream_head<W: Write>(writer: &mut W, resp: &Response) -> io::Result<()> {
    let reason = {
        let r = resp.status.reason();
        if r.is_empty() {
            "Unknown"
        } else {
            r
        }
    };
    write!(writer, "HTTP/1.1 {} {}\r\n", resp.status.as_u16(), reason)?;
    for (name, value) in resp.headers.iter() {
        if name.eq_ignore_ascii_case("content-length") {
            continue;
        }
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "\r\n")?;
    writer.flush()
}

/// Writes a response, setting `Content-Length` from the body.
pub fn write_response<W: Write>(writer: &mut W, resp: &Response) -> io::Result<()> {
    let reason = {
        let r = resp.status.reason();
        if r.is_empty() {
            "Unknown"
        } else {
            r
        }
    };
    write!(writer, "HTTP/1.1 {} {}\r\n", resp.status.as_u16(), reason)?;
    for (name, value) in resp.headers.iter() {
        if name.eq_ignore_ascii_case("content-length") {
            continue;
        }
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "Content-Length: {}\r\n\r\n", resp.body.len())?;
    writer.write_all(&resp.body)?;
    writer.flush()
}

fn protocol_error(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("http protocol error: {msg}"),
    )
}

/// Reads a CRLF- (or LF-) terminated line. `allow_eof` turns clean EOF at a
/// line start into `None`.
pub(crate) fn read_line<R: BufRead>(reader: &mut R, allow_eof: bool) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    let mut limited = reader.take(MAX_HEADER_BYTES as u64);
    let n = limited.read_until(b'\n', &mut line)?;
    if n == 0 {
        return if allow_eof {
            Ok(None)
        } else {
            Err(protocol_error("unexpected end of stream"))
        };
    }
    if line.last() == Some(&b'\n') {
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
    } else if line.len() >= MAX_HEADER_BYTES {
        return Err(protocol_error("header line too long"));
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| protocol_error("non-utf8 header data"))
}

fn read_headers<R: BufRead>(reader: &mut R) -> io::Result<Headers> {
    let mut headers = Headers::new();
    let mut total = 0usize;
    loop {
        let line = read_line(reader, false)?.expect("read_line(false) never yields None");
        if line.is_empty() {
            return Ok(headers);
        }
        total += line.len();
        if total > MAX_HEADER_BYTES {
            return Err(protocol_error("header section too large"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| protocol_error("malformed header line"))?;
        headers.append(name.trim(), value.trim());
    }
}

fn read_body<R: BufRead>(reader: &mut R, headers: &Headers) -> io::Result<Vec<u8>> {
    if headers
        .get("transfer-encoding")
        .is_some_and(|te| te.to_ascii_lowercase().contains("chunked"))
    {
        return read_chunked_body(reader);
    }
    let len: usize = match headers.get("content-length") {
        Some(v) => v
            .trim()
            .parse()
            .map_err(|_| protocol_error("invalid content-length"))?,
        None => 0,
    };
    if len > MAX_BODY_BYTES {
        return Err(protocol_error("body exceeds size limit"));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(body)
}

fn read_chunked_body<R: BufRead>(reader: &mut R) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let size_line = read_line(reader, false)?.expect("read_line(false) never yields None");
        let size_token = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_token, 16)
            .map_err(|_| protocol_error("invalid chunk size"))?;
        if body.len() + size > MAX_BODY_BYTES {
            return Err(protocol_error("chunked body exceeds size limit"));
        }
        if size == 0 {
            // Trailer section: read until the blank line.
            loop {
                let line = read_line(reader, false)?.expect("read_line(false) never yields None");
                if line.is_empty() {
                    return Ok(body);
                }
            }
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader.read_exact(&mut body[start..])?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(protocol_error("missing chunk terminator"));
        }
    }
}

/// Decides whether the connection should stay open after this exchange.
pub fn keep_alive(req: &Request) -> bool {
    !matches!(
        req.headers.get("connection").map(str::to_ascii_lowercase),
        Some(v) if v.contains("close")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn reader(bytes: &[u8]) -> BufReader<&[u8]> {
        BufReader::new(bytes)
    }

    #[test]
    fn parses_simple_request() {
        let raw = b"POST /services/sum HTTP/1.1\r\nHost: h\r\nContent-Type: application/json\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let req = read_request(&mut reader(raw)).unwrap().unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.target, "/services/sum");
        assert_eq!(req.headers.get("content-type"), Some("application/json"));
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn eof_before_request_is_none() {
        assert!(read_request(&mut reader(b"")).unwrap().is_none());
    }

    #[test]
    fn truncated_body_is_an_error() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(read_request(&mut reader(raw)).is_err());
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            &b"GET /\r\n\r\n"[..],
            &b"GET / SPDY/3\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbadheader\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"[..],
        ] {
            assert!(
                read_request(&mut reader(raw)).is_err(),
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn request_round_trip() {
        let req =
            Request::new(Method::Post, "/x?y=1").with_json(&mathcloud_json::json!({"k": [1, 2]}));
        let mut buf = Vec::new();
        write_request(&mut buf, &req, "example:80").unwrap();
        let parsed = read_request(&mut reader(&buf)).unwrap().unwrap();
        assert_eq!(parsed.method, req.method);
        assert_eq!(parsed.target, req.target);
        assert_eq!(parsed.body, req.body);
        assert_eq!(parsed.headers.get("host"), Some("example:80"));
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::json(201, &mathcloud_json::json!({"id": "job-1"}));
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let parsed = read_response(&mut reader(&buf)).unwrap();
        assert_eq!(parsed.status, StatusCode::CREATED);
        assert_eq!(parsed.body_json().unwrap()["id"].as_str(), Some("job-1"));
    }

    #[test]
    fn unknown_status_gets_reason_placeholder() {
        let resp = Response::empty(599u16);
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        assert!(String::from_utf8_lossy(&buf).starts_with("HTTP/1.1 599 Unknown"));
    }

    #[test]
    fn chunked_response_bodies_decode() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let resp = read_response(&mut reader(raw)).unwrap();
        assert_eq!(resp.body, b"Wikipedia");
    }

    #[test]
    fn chunked_with_extensions_and_trailers() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3;ext=1\r\nabc\r\n0\r\nTrailer: x\r\n\r\n";
        let resp = read_response(&mut reader(raw)).unwrap();
        assert_eq!(resp.body, b"abc");
    }

    #[test]
    fn bad_chunk_framing_is_rejected() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n";
        assert!(read_response(&mut reader(raw)).is_err());
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabcXX";
        assert!(read_response(&mut reader(raw)).is_err());
    }

    #[test]
    fn keep_alive_default_and_close() {
        let req = Request::new(Method::Get, "/");
        assert!(keep_alive(&req));
        let req = req.with_header("Connection", "close");
        assert!(!keep_alive(&req));
        let req = Request::new(Method::Get, "/").with_header("Connection", "Keep-Alive");
        assert!(keep_alive(&req));
    }

    #[test]
    fn lf_only_line_endings_are_tolerated() {
        let raw = b"GET / HTTP/1.1\nHost: h\n\n";
        let req = read_request(&mut reader(raw)).unwrap().unwrap();
        assert_eq!(req.headers.get("host"), Some("h"));
    }
}
