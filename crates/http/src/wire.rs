//! HTTP/1.1 wire protocol: reading and writing messages on byte streams.

use std::io::{self, BufRead, Read, Write};

use crate::message::{Headers, Method, Request, Response, StatusCode};

/// Upper bound on header-section size, guarding against hostile peers.
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Upper bound on body size (1 GiB) — the paper reports intermediate matrix
/// payloads of hundreds of megabytes, so the limit is generous.
const MAX_BODY_BYTES: usize = 1 << 30;

/// Per-message size caps enforced while parsing a request.
///
/// The server passes its configured caps; violations surface as typed
/// errors that [`violation_status`] maps to `431` (header section) or `413`
/// (body) instead of a generic `400`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Cap on the total header section (request line + header lines).
    pub max_header_bytes: usize,
    /// Cap on the declared or accumulated body size.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_header_bytes: MAX_HEADER_BYTES,
            max_body_bytes: MAX_BODY_BYTES,
        }
    }
}

/// A size-cap violation, carried inside the `io::Error` so the server can
/// answer with the right status instead of a blanket `400`.
#[derive(Debug)]
struct Violation {
    status: u16,
    msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "http protocol error: {}", self.msg)
    }
}

impl std::error::Error for Violation {}

fn violation(status: u16, msg: impl Into<String>) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        Violation {
            status,
            msg: msg.into(),
        },
    )
}

/// The response status a parse error deserves: `431` for header-cap
/// violations, `413` for body-cap violations, `400` for everything else.
pub fn violation_status(e: &io::Error) -> u16 {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<Violation>())
        .map_or(400, |v| v.status)
}

/// Reads one request from a buffered stream with default [`Limits`].
///
/// Returns `Ok(None)` on a clean EOF before any bytes (client closed a
/// keep-alive connection).
///
/// # Errors
///
/// I/O errors and protocol violations are both reported as `io::Error`; the
/// caller turns violations into `400`/`413`/`431` responses where possible.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    read_request_limited(reader, &Limits::default())
}

/// [`read_request`] under explicit size caps.
///
/// # Errors
///
/// See [`read_request`]; cap violations answer to [`violation_status`].
pub fn read_request_limited<R: BufRead>(
    reader: &mut R,
    limits: &Limits,
) -> io::Result<Option<Request>> {
    let request_line = match read_line_capped(reader, true, limits.max_header_bytes)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| protocol_error("missing method"))?;
    let target = parts
        .next()
        .ok_or_else(|| protocol_error("missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| protocol_error("missing http version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(protocol_error("unsupported http version"));
    }
    let headers = read_headers(reader, limits)?;
    let body = read_body(reader, &headers, limits)?;
    Ok(Some(Request {
        method: Method::from_token(method),
        target: target.to_string(),
        headers,
        body,
    }))
}

/// Reads one response from a buffered stream.
///
/// # Errors
///
/// I/O errors and protocol violations are both reported as `io::Error`.
pub fn read_response<R: BufRead>(reader: &mut R) -> io::Result<Response> {
    let status_line = read_line(reader, true)?.ok_or_else(|| protocol_error("empty response"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(protocol_error("unsupported http version in response"));
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| protocol_error("bad status code"))?;
    let limits = Limits::default();
    let headers = read_headers(reader, &limits)?;
    let body = read_body(reader, &headers, &limits)?;
    Ok(Response {
        status: StatusCode::from(code),
        headers,
        body,
        stream: None,
    })
}

/// Writes a request, setting `Content-Length` from the body.
pub fn write_request<W: Write>(writer: &mut W, req: &Request, host: &str) -> io::Result<()> {
    write!(writer, "{} {} HTTP/1.1\r\n", req.method, req.target)?;
    write!(writer, "Host: {host}\r\n")?;
    for (name, value) in req.headers.iter() {
        if name.eq_ignore_ascii_case("host") || name.eq_ignore_ascii_case("content-length") {
            continue;
        }
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "Content-Length: {}\r\n\r\n", req.body.len())?;
    writer.write_all(&req.body)?;
    writer.flush()
}

/// Writes the status line and headers of a streaming response — no
/// `Content-Length`, no body; the stream callback takes over the writer.
pub fn write_stream_head<W: Write>(writer: &mut W, resp: &Response) -> io::Result<()> {
    let reason = {
        let r = resp.status.reason();
        if r.is_empty() {
            "Unknown"
        } else {
            r
        }
    };
    write!(writer, "HTTP/1.1 {} {}\r\n", resp.status.as_u16(), reason)?;
    for (name, value) in resp.headers.iter() {
        if name.eq_ignore_ascii_case("content-length") {
            continue;
        }
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "\r\n")?;
    writer.flush()
}

/// Writes a response, setting `Content-Length` from the body.
pub fn write_response<W: Write>(writer: &mut W, resp: &Response) -> io::Result<()> {
    let reason = {
        let r = resp.status.reason();
        if r.is_empty() {
            "Unknown"
        } else {
            r
        }
    };
    write!(writer, "HTTP/1.1 {} {}\r\n", resp.status.as_u16(), reason)?;
    for (name, value) in resp.headers.iter() {
        if name.eq_ignore_ascii_case("content-length") {
            continue;
        }
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "Content-Length: {}\r\n\r\n", resp.body.len())?;
    writer.write_all(&resp.body)?;
    writer.flush()
}

fn protocol_error(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("http protocol error: {msg}"),
    )
}

/// Reads a CRLF- (or LF-) terminated line. `allow_eof` turns clean EOF at a
/// line start into `None`.
pub(crate) fn read_line<R: BufRead>(reader: &mut R, allow_eof: bool) -> io::Result<Option<String>> {
    read_line_capped(reader, allow_eof, MAX_HEADER_BYTES)
}

fn read_line_capped<R: BufRead>(
    reader: &mut R,
    allow_eof: bool,
    cap: usize,
) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    let mut limited = reader.take(cap.saturating_add(1) as u64);
    let n = limited.read_until(b'\n', &mut line)?;
    if n == 0 {
        return if allow_eof {
            Ok(None)
        } else {
            Err(protocol_error("unexpected end of stream"))
        };
    }
    if line.last() == Some(&b'\n') {
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        if line.len() > cap {
            return Err(violation(431, "header line too long"));
        }
    } else if line.len() > cap {
        return Err(violation(431, "header line too long"));
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| protocol_error("non-utf8 header data"))
}

fn read_headers<R: BufRead>(reader: &mut R, limits: &Limits) -> io::Result<Headers> {
    let mut headers = Headers::new();
    let mut total = 0usize;
    loop {
        let line = read_line_capped(reader, false, limits.max_header_bytes)?
            .expect("read_line(false) never yields None");
        if line.is_empty() {
            return Ok(headers);
        }
        total += line.len();
        if total > limits.max_header_bytes {
            return Err(violation(431, "header section too large"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| protocol_error("malformed header line"))?;
        headers.append(name.trim(), value.trim());
    }
}

fn read_body<R: BufRead>(
    reader: &mut R,
    headers: &Headers,
    limits: &Limits,
) -> io::Result<Vec<u8>> {
    if headers
        .get("transfer-encoding")
        .is_some_and(|te| te.to_ascii_lowercase().contains("chunked"))
    {
        return read_chunked_body(reader, limits);
    }
    let len: usize = match headers.get("content-length") {
        Some(v) => v
            .trim()
            .parse()
            .map_err(|_| protocol_error("invalid content-length"))?,
        None => 0,
    };
    if len > limits.max_body_bytes {
        return Err(violation(413, "body exceeds size limit"));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(body)
}

fn read_chunked_body<R: BufRead>(reader: &mut R, limits: &Limits) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let size_line = read_line(reader, false)?.expect("read_line(false) never yields None");
        let size_token = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_token, 16)
            .map_err(|_| protocol_error("invalid chunk size"))?;
        if body.len() + size > limits.max_body_bytes {
            return Err(violation(413, "chunked body exceeds size limit"));
        }
        if size == 0 {
            // Trailer section: read until the blank line.
            loop {
                let line = read_line(reader, false)?.expect("read_line(false) never yields None");
                if line.is_empty() {
                    return Ok(body);
                }
            }
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader.read_exact(&mut body[start..])?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(protocol_error("missing chunk terminator"));
        }
    }
}

/// Decides whether the connection should stay open after this exchange.
pub fn keep_alive(req: &Request) -> bool {
    !matches!(
        req.headers.get("connection").map(str::to_ascii_lowercase),
        Some(v) if v.contains("close")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn reader(bytes: &[u8]) -> BufReader<&[u8]> {
        BufReader::new(bytes)
    }

    #[test]
    fn parses_simple_request() {
        let raw = b"POST /services/sum HTTP/1.1\r\nHost: h\r\nContent-Type: application/json\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let req = read_request(&mut reader(raw)).unwrap().unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.target, "/services/sum");
        assert_eq!(req.headers.get("content-type"), Some("application/json"));
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn eof_before_request_is_none() {
        assert!(read_request(&mut reader(b"")).unwrap().is_none());
    }

    #[test]
    fn truncated_body_is_an_error() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(read_request(&mut reader(raw)).is_err());
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            &b"GET /\r\n\r\n"[..],
            &b"GET / SPDY/3\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbadheader\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"[..],
        ] {
            assert!(
                read_request(&mut reader(raw)).is_err(),
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn request_round_trip() {
        let req =
            Request::new(Method::Post, "/x?y=1").with_json(&mathcloud_json::json!({"k": [1, 2]}));
        let mut buf = Vec::new();
        write_request(&mut buf, &req, "example:80").unwrap();
        let parsed = read_request(&mut reader(&buf)).unwrap().unwrap();
        assert_eq!(parsed.method, req.method);
        assert_eq!(parsed.target, req.target);
        assert_eq!(parsed.body, req.body);
        assert_eq!(parsed.headers.get("host"), Some("example:80"));
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::json(201, &mathcloud_json::json!({"id": "job-1"}));
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let parsed = read_response(&mut reader(&buf)).unwrap();
        assert_eq!(parsed.status, StatusCode::CREATED);
        assert_eq!(parsed.body_json().unwrap()["id"].as_str(), Some("job-1"));
    }

    #[test]
    fn unknown_status_gets_reason_placeholder() {
        let resp = Response::empty(599u16);
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        assert!(String::from_utf8_lossy(&buf).starts_with("HTTP/1.1 599 Unknown"));
    }

    #[test]
    fn chunked_response_bodies_decode() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let resp = read_response(&mut reader(raw)).unwrap();
        assert_eq!(resp.body, b"Wikipedia");
    }

    #[test]
    fn chunked_with_extensions_and_trailers() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3;ext=1\r\nabc\r\n0\r\nTrailer: x\r\n\r\n";
        let resp = read_response(&mut reader(raw)).unwrap();
        assert_eq!(resp.body, b"abc");
    }

    #[test]
    fn bad_chunk_framing_is_rejected() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n";
        assert!(read_response(&mut reader(raw)).is_err());
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabcXX";
        assert!(read_response(&mut reader(raw)).is_err());
    }

    #[test]
    fn keep_alive_default_and_close() {
        let req = Request::new(Method::Get, "/");
        assert!(keep_alive(&req));
        let req = req.with_header("Connection", "close");
        assert!(!keep_alive(&req));
        let req = Request::new(Method::Get, "/").with_header("Connection", "Keep-Alive");
        assert!(keep_alive(&req));
    }

    #[test]
    fn lf_only_line_endings_are_tolerated() {
        let raw = b"GET / HTTP/1.1\nHost: h\n\n";
        let req = read_request(&mut reader(raw)).unwrap().unwrap();
        assert_eq!(req.headers.get("host"), Some("h"));
    }

    fn status_of(e: &io::Error) -> u16 {
        assert_eq!(e.kind(), io::ErrorKind::InvalidData, "{e}");
        violation_status(e)
    }

    /// Builds a request whose counted header bytes (`Host: h` plus the pad
    /// line) total exactly `cap + excess`.
    fn padded_headers(cap: usize, excess: isize) -> Vec<u8> {
        let fixed = "Host: h".len() + "X-Pad: ".len();
        let pad = (cap as isize + excess - fixed as isize) as usize;
        format!(
            "GET / HTTP/1.1\r\nHost: h\r\nX-Pad: {}\r\n\r\n",
            "p".repeat(pad)
        )
        .into_bytes()
    }

    #[test]
    fn header_section_at_the_cap_passes() {
        let limits = Limits {
            max_header_bytes: 256,
            max_body_bytes: 1024,
        };
        let raw = padded_headers(limits.max_header_bytes, 0);
        let req = read_request_limited(&mut reader(&raw), &limits)
            .unwrap()
            .unwrap();
        assert!(req.headers.get("x-pad").is_some());
    }

    #[test]
    fn one_byte_past_the_header_cap_is_431() {
        let limits = Limits {
            max_header_bytes: 256,
            max_body_bytes: 1024,
        };
        let raw = padded_headers(limits.max_header_bytes, 1);
        let err = read_request_limited(&mut reader(&raw), &limits).unwrap_err();
        assert_eq!(status_of(&err), 431);
    }

    #[test]
    fn single_oversized_header_line_is_431() {
        let limits = Limits {
            max_header_bytes: 128,
            max_body_bytes: 1024,
        };
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(512));
        let err = read_request_limited(&mut reader(raw.as_bytes()), &limits).unwrap_err();
        assert_eq!(status_of(&err), 431);
    }

    #[test]
    fn body_at_the_cap_passes_and_one_past_is_413() {
        let limits = Limits {
            max_header_bytes: 1024,
            max_body_bytes: 64,
        };
        let body = "b".repeat(limits.max_body_bytes);
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let req = read_request_limited(&mut reader(raw.as_bytes()), &limits)
            .unwrap()
            .unwrap();
        assert_eq!(req.body.len(), limits.max_body_bytes);

        let body = "b".repeat(limits.max_body_bytes + 1);
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let err = read_request_limited(&mut reader(raw.as_bytes()), &limits).unwrap_err();
        assert_eq!(status_of(&err), 413);
    }

    #[test]
    fn huge_content_length_is_rejected_before_reading_the_body() {
        let limits = Limits {
            max_header_bytes: 1024,
            max_body_bytes: 64,
        };
        // The declared length alone trips the cap: no body bytes follow.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        let err = read_request_limited(&mut reader(raw), &limits).unwrap_err();
        assert_eq!(status_of(&err), 413);
    }

    #[test]
    fn oversized_chunked_body_is_413() {
        let limits = Limits {
            max_header_bytes: 1024,
            max_body_bytes: 8,
        };
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n6\r\nabcdef\r\n6\r\nghijkl\r\n0\r\n\r\n";
        let err = read_request_limited(&mut reader(raw), &limits).unwrap_err();
        assert_eq!(status_of(&err), 413);
    }

    #[test]
    fn malformed_requests_still_map_to_400() {
        let err = read_request(&mut reader(b"NOT A REQUEST\r\n\r\n")).unwrap_err();
        assert_eq!(status_of(&err), 400);
    }
}
