//! A blocking HTTP/1.1 server with a worker thread pool.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mathcloud_telemetry::{metrics, trace};

use crate::message::Response;
use crate::router::Router;
use crate::wire;

/// Default number of connection-handling worker threads, mirroring the
/// container's "configurable pool of handler threads" (§3.1 of the paper).
const DEFAULT_WORKERS: usize = 8;

/// Per-connection socket read timeout; bounds how long an idle keep-alive
/// connection pins a worker.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A running HTTP server.
///
/// Accepts connections on a background thread and handles each on a worker
/// from a fixed pool. Dropping the server (or calling [`Server::shutdown`])
/// stops the accept loop.
///
/// # Examples
///
/// ```
/// use mathcloud_http::{Client, Response, Router, Server};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut router = Router::new();
/// router.get("/ping", |_r, _p| Response::text(200, "pong"));
/// let server = Server::bind("127.0.0.1:0", router)?;
/// let resp = Client::new().get(&format!("http://{}/ping", server.local_addr()))?;
/// assert_eq!(resp.body_string(), "pong");
/// # server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    active: Arc<AtomicUsize>,
}

impl Server {
    /// Binds and starts serving with the default worker count.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind failure, exhausted ports).
    pub fn bind<A: ToSocketAddrs>(addr: A, router: Router) -> std::io::Result<Server> {
        Server::bind_with_workers(addr, router, DEFAULT_WORKERS)
    }

    /// Binds and starts serving with an explicit worker-pool size.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn bind_with_workers<A: ToSocketAddrs>(
        addr: A,
        router: Router,
        workers: usize,
    ) -> std::io::Result<Server> {
        assert!(workers > 0, "server needs at least one worker");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let router = Arc::new(router);

        // Bounded hand-off queue from the acceptor to the workers.
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(workers * 4);
        let rx = Arc::new(mathcloud_telemetry::sync::Mutex::new(rx));

        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let router = Arc::clone(&router);
            let active = Arc::clone(&active);
            std::thread::spawn(move || loop {
                let stream = {
                    let guard = rx.lock();
                    guard.recv()
                };
                match stream {
                    Ok(stream) => {
                        active.fetch_add(1, Ordering::SeqCst);
                        let _ = handle_connection(stream, &router);
                        active.fetch_sub(1, Ordering::SeqCst);
                    }
                    Err(_) => return, // acceptor gone: shut down
                }
            });
        }

        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    // If all workers are busy the bounded queue applies
                    // back-pressure here, which is the desired behaviour.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
            }
        });

        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            active,
        })
    }

    /// The bound socket address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The base URL of this server.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Number of connections currently being handled.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Stops accepting connections and unblocks the acceptor.
    ///
    /// In-flight requests finish on their workers; this only tears down the
    /// accept loop.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Kick the blocking accept() with a no-op connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

fn handle_connection(stream: TcpStream, router: &Router) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let mut req = match wire::read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()), // clean close
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                let resp = Response::error(400, &e.to_string());
                let _ = wire::write_response(&mut writer, &resp);
                return Ok(());
            }
            Err(_) => return Ok(()), // timeout / reset: drop silently
        };
        // The server edge is where request ids enter the platform: honor a
        // well-formed client-supplied X-MC-Request-Id, otherwise mint one.
        // Handlers see it on the request; the response always echoes it.
        let request_id = match req.headers.get(trace::REQUEST_ID_HEADER) {
            Some(rid) if trace::is_valid_request_id(rid) => rid.to_string(),
            _ => trace::next_request_id(),
        };
        req.headers.set(trace::REQUEST_ID_HEADER, &request_id);
        let method = req.method.as_str().to_string();
        let keep = wire::keep_alive(&req);
        let request_bytes = req.body.len();
        let started = Instant::now();
        let (mut resp, route) = router.dispatch_labeled(&mut req);
        let labels: &[(&str, &str)] = &[("route", route), ("method", &method)];
        metrics::global()
            .histogram("mc_http_request_seconds", labels)
            .observe_duration(started.elapsed());
        // Body sizes quantify the data-transfer share of platform overhead
        // (§4): powers-of-4 buckets separate control-plane chatter from bulk
        // parameter/file traffic.
        for (direction, bytes) in [("request", request_bytes), ("response", resp.body.len())] {
            metrics::global()
                .histogram_with(
                    "mc_http_body_bytes",
                    &[("route", route), ("direction", direction)],
                    metrics::BODY_SIZE_BUCKETS,
                )
                .observe(bytes as f64);
        }
        let status = resp.status.as_u16().to_string();
        metrics::global()
            .counter(
                "mc_http_requests_total",
                &[("route", route), ("method", &method), ("status", &status)],
            )
            .inc();
        if resp.headers.get(trace::REQUEST_ID_HEADER).is_none() {
            resp.headers.set(trace::REQUEST_ID_HEADER, &request_id);
        }
        if let Some(stream) = resp.stream.take() {
            // Streaming response (Server-Sent Events): write the headers
            // without a Content-Length, hand the connection to the stream
            // callback, and close when it returns. The connection never
            // re-enters the keep-alive loop.
            resp.headers.set("Connection", "close");
            resp.headers.set("Cache-Control", "no-store");
            wire::write_stream_head(&mut writer, &resp)?;
            let _ = stream.run(&mut writer);
            return Ok(());
        }
        if !keep {
            resp.headers.set("Connection", "close");
        }
        wire::write_response(&mut writer, &resp)?;
        if !keep {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::message::{Method, Request};
    use crate::router::PathParams;
    use mathcloud_json::json;

    fn demo_server() -> Server {
        let mut router = Router::new();
        router.get("/ping", |_r, _p: &PathParams| Response::text(200, "pong"));
        router.post("/echo", |r: &Request, _p: &PathParams| {
            Response::bytes(
                200,
                r.headers.get("content-type").unwrap_or("text/plain"),
                r.body.clone(),
            )
        });
        router.get("/json", |_r, _p: &PathParams| {
            Response::json(200, &json!({"ok": true}))
        });
        Server::bind("127.0.0.1:0", router).expect("bind")
    }

    #[test]
    fn serves_basic_requests() {
        let server = demo_server();
        let client = Client::new();
        let resp = client.get(&format!("{}/ping", server.base_url())).unwrap();
        assert_eq!(resp.status.as_u16(), 200);
        assert_eq!(resp.body_string(), "pong");
        let resp = client
            .get(&format!("{}/missing", server.base_url()))
            .unwrap();
        assert_eq!(resp.status.as_u16(), 404);
    }

    #[test]
    fn echoes_large_bodies() {
        let server = demo_server();
        let payload = "x".repeat(2 * 1024 * 1024);
        let req = Request::new(Method::Post, "/echo").with_text(&payload);
        let resp = Client::new()
            .send(&format!("{}/echo", server.base_url()).parse().unwrap(), req)
            .unwrap();
        assert_eq!(resp.body.len(), payload.len());
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = demo_server();
        let base = server.base_url();
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let base = base.clone();
                std::thread::spawn(move || {
                    let resp = Client::new().get(&format!("{base}/json")).unwrap();
                    assert_eq!(resp.body_json().unwrap()["ok"].as_bool(), Some(true));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn keep_alive_reuses_one_connection() {
        let server = demo_server();
        let url: crate::Url = format!("{}/ping", server.base_url()).parse().unwrap();
        let client = Client::new();
        let mut conn = client.connect(&url).unwrap();
        for _ in 0..5 {
            let resp = conn.send(Request::new(Method::Get, "/ping")).unwrap();
            assert_eq!(resp.body_string(), "pong");
        }
    }

    #[test]
    fn shutdown_is_idempotent() {
        let server = demo_server();
        server.shutdown();
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        use std::io::{Read, Write};
        let server = demo_server();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut buf = String::new();
        let _ = s.read_to_string(&mut buf);
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
    }
}
