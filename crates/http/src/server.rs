//! A blocking HTTP/1.1 server with a worker thread pool and an elastic
//! streamer set.
//!
//! The connection core separates three concerns the old edge conflated:
//!
//! * **Acceptor** — accepts sockets, sheds load past the connection cap
//!   (`503` + `Retry-After`), and hands connections to the pool over a
//!   bounded queue with an interruptible timed handoff (shutdown can never
//!   deadlock behind a full queue).
//! * **Worker pool** — a fixed set of `workers` threads running the
//!   keep-alive request loop on reusable per-worker buffers
//!   ([`crate::conn`]). Idle keep-alive connections are bounded by a short
//!   *idle* timeout, in-flight reads by a longer *read* timeout, so a quiet
//!   peer is reclaimed quickly while a slow upload still completes.
//! * **Streamer set** — streaming responses (Server-Sent Events) detach to
//!   an elastic [`mathcloud_telemetry::workpool::WorkPool`] (the
//!   fire-and-forget sibling of the exact kernels' persistent pool), so a
//!   long-lived `GET /events` subscriber returns its pool worker before the
//!   stream starts. Eight subscribers no longer deadlock an eight-worker
//!   container.
//!
//! Connection accounting is exposed as `mc_http_connections{state=...}`
//! (queued / active / streaming) and `mc_http_conn_rejected_total`.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mathcloud_telemetry::workpool::WorkPool;
use mathcloud_telemetry::{metrics, trace};

use crate::conn::{ConnBuffers, ConnReader, ConnWriter};
use crate::message::{Response, StreamControl};
use crate::router::Router;
use crate::wire;

/// Default number of request-handling worker threads, mirroring the
/// container's "configurable pool of handler threads" (§3.1 of the paper).
const DEFAULT_WORKERS: usize = 8;

/// How the server edge is sized and bounded.
///
/// # Examples
///
/// ```
/// use mathcloud_http::ServerConfig;
/// use std::time::Duration;
///
/// let cfg = ServerConfig {
///     workers: 4,
///     idle_timeout: Duration::from_secs(2),
///     ..ServerConfig::default()
/// };
/// assert_eq!(cfg.workers, 4);
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Request-handling pool threads.
    pub workers: usize,
    /// How long an idle keep-alive connection may wait for its next request
    /// before being reclaimed. Short: an idle peer costs a worker for at
    /// most this long.
    pub idle_timeout: Duration,
    /// Socket read timeout once a request has started arriving (slow
    /// uploads get this much per read).
    pub read_timeout: Duration,
    /// Total connections (queued + active + streaming) before the acceptor
    /// sheds new ones with `503` + `Retry-After`.
    pub max_connections: usize,
    /// Header-section cap; larger requests get `431`.
    pub max_header_bytes: usize,
    /// Body cap; larger requests get `413`.
    pub max_body_bytes: usize,
    /// How long [`Drop`] waits for workers and streamers to finish before
    /// detaching them.
    pub drain_grace: Duration,
    /// Seconds advertised in the `Retry-After` header of shed responses.
    pub retry_after_secs: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: DEFAULT_WORKERS,
            idle_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(30),
            max_connections: 1024,
            max_header_bytes: 64 * 1024,
            max_body_bytes: 1 << 30,
            drain_grace: Duration::from_secs(3),
            retry_after_secs: 1,
        }
    }
}

/// Shared state of one server's edge.
struct Edge {
    router: Router,
    config: ServerConfig,
    limits: wire::Limits,
    /// Connections currently tracked (queued + active + streaming).
    total: AtomicUsize,
    /// Set by [`Server::shutdown`]: stop accepting.
    stop: AtomicBool,
    /// Set by [`Drop`]: force `Connection: close` and cut idle waits short.
    draining: AtomicBool,
    /// Shutdown signal handed to every streaming response body.
    stream_control: StreamControl,
    /// The elastic streamer set for detached streaming responses.
    streamers: WorkPool,
}

impl Edge {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

fn conn_gauge(state: &'static str) -> metrics::Gauge {
    metrics::global().gauge("mc_http_connections", &[("state", state)])
}

/// One tracked connection: moves from the acceptor through the pool and
/// possibly to the streamer set; its gauges and the total count are
/// released on drop wherever it ends up.
struct Conn {
    stream: TcpStream,
    edge: Arc<Edge>,
    state: &'static str,
}

impl Conn {
    fn new(stream: TcpStream, edge: &Arc<Edge>) -> Conn {
        edge.total.fetch_add(1, Ordering::SeqCst);
        conn_gauge("queued").add(1);
        Conn {
            stream,
            edge: Arc::clone(edge),
            state: "queued",
        }
    }

    fn transition(&mut self, to: &'static str) {
        conn_gauge(self.state).sub(1);
        conn_gauge(to).add(1);
        self.state = to;
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        conn_gauge(self.state).sub(1);
        self.edge.total.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running HTTP server.
///
/// Accepts connections on a background thread and handles each on a worker
/// from a fixed pool; streaming responses detach to an elastic streamer
/// set. [`Server::shutdown`] stops the accept loop; dropping the server
/// additionally drains queued connections (every queued request is still
/// answered), winds down live streams, and joins workers under
/// [`ServerConfig::drain_grace`].
///
/// # Examples
///
/// ```
/// use mathcloud_http::{Client, Response, Router, Server};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut router = Router::new();
/// router.get("/ping", |_r, _p| Response::text(200, "pong"));
/// let server = Server::bind("127.0.0.1:0", router)?;
/// let resp = Client::new().get(&format!("http://{}/ping", server.local_addr()))?;
/// assert_eq!(resp.body_string(), "pong");
/// # server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct Server {
    addr: SocketAddr,
    edge: Arc<Edge>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving with the default configuration.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind failure, exhausted ports).
    pub fn bind<A: ToSocketAddrs>(addr: A, router: Router) -> std::io::Result<Server> {
        Server::bind_with_config(addr, router, ServerConfig::default())
    }

    /// Binds and starts serving with an explicit worker-pool size.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn bind_with_workers<A: ToSocketAddrs>(
        addr: A,
        router: Router,
        workers: usize,
    ) -> std::io::Result<Server> {
        Server::bind_with_config(
            addr,
            router,
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        )
    }

    /// Binds and starts serving under an explicit [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` is zero.
    pub fn bind_with_config<A: ToSocketAddrs>(
        addr: A,
        router: Router,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        assert!(config.workers > 0, "server needs at least one worker");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let limits = wire::Limits {
            max_header_bytes: config.max_header_bytes,
            max_body_bytes: config.max_body_bytes,
        };
        // Streamers are bounded by the connection cap: every stream holds a
        // tracked connection anyway, so the cap can never be exceeded.
        let streamers = WorkPool::new(
            "mc-http-streamer",
            config.max_connections.max(1),
            Duration::from_secs(2),
        )
        .with_drain_grace(config.drain_grace);
        let edge = Arc::new(Edge {
            router,
            limits,
            total: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            stream_control: StreamControl::new(),
            streamers,
            config,
        });

        // Bounded hand-off queue from the acceptor to the workers.
        let queue_depth = edge.config.workers * 4;
        let (tx, rx) = std::sync::mpsc::sync_channel::<Conn>(queue_depth);
        let rx = Arc::new(mathcloud_telemetry::sync::Mutex::new(rx));

        let workers = (0..edge.config.workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let edge = Arc::clone(&edge);
                std::thread::Builder::new()
                    .name(format!("mc-http-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &edge))
                    .expect("spawn http worker")
            })
            .collect();

        let accept_edge = Arc::clone(&edge);
        let accept_thread = std::thread::Builder::new()
            .name("mc-http-acceptor".to_string())
            .spawn(move || accept_loop(&listener, &tx, &accept_edge))
            .expect("spawn http acceptor");

        Ok(Server {
            addr,
            edge,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound socket address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The base URL of this server.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Connections currently tracked (queued, being handled, or streaming).
    pub fn active_connections(&self) -> usize {
        self.edge.total.load(Ordering::SeqCst)
    }

    /// Live streamer threads currently carrying detached streams.
    pub fn live_streamers(&self) -> usize {
        self.edge.streamers.live_workers()
    }

    /// Stops accepting connections and unblocks the acceptor — even when it
    /// is parked on a full handoff queue.
    ///
    /// In-flight requests finish on their workers; this only tears down the
    /// accept loop. Dropping the server performs the full graceful drain.
    pub fn shutdown(&self) {
        if self.edge.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Kick the blocking accept() with a no-op connection; the timed
        // handoff loop re-checks the stop flag on its own.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for Server {
    /// Graceful drain: stop accepting, answer every queued connection, wind
    /// down live streams, and join workers under the drain grace. Workers
    /// still mid-request past the deadline are detached (they exit after
    /// their current exchange).
    fn drop(&mut self) {
        self.shutdown();
        self.edge.draining.store(true, Ordering::SeqCst);
        self.edge.stream_control.stop();
        // Joining the acceptor drops the queue sender; workers then drain
        // the remaining queued connections (each still gets its response)
        // and exit on the disconnect.
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let deadline = Instant::now() + self.edge.config.drain_grace;
        for handle in self.workers.drain(..) {
            while !handle.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            if handle.is_finished() {
                let _ = handle.join();
            }
            // else: detached — it exits after its in-flight exchange.
        }
        // The streamer pool joins its threads in its own Drop (bounded by
        // the same grace) when the last Edge reference goes away.
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<Conn>, edge: &Arc<Edge>) {
    for stream in listener.incoming() {
        if edge.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if edge.total.load(Ordering::SeqCst) >= edge.config.max_connections {
            shed(&stream, edge);
            continue;
        }
        let mut conn = Conn::new(stream, edge);
        // Timed, interruptible handoff: back-pressure is still applied when
        // all workers are busy, but shutdown always unblocks the acceptor —
        // a full queue can no longer wedge `Server::shutdown`.
        loop {
            match tx.try_send(conn) {
                Ok(()) => break,
                Err(TrySendError::Full(returned)) => {
                    if edge.stop.load(Ordering::SeqCst) {
                        shed(&returned.stream, edge);
                        break;
                    }
                    conn = returned;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(TrySendError::Disconnected(_)) => return,
            }
        }
    }
}

/// Over-capacity (or shutting-down) shed: a best-effort `503` with
/// `Retry-After`, then close.
fn shed(stream: &TcpStream, edge: &Edge) {
    metrics::global()
        .counter("mc_http_conn_rejected_total", &[])
        .inc();
    trace::info(
        "http.conn.shed",
        None,
        &[("retry_after_s", &edge.config.retry_after_secs.to_string())],
    );
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let resp = Response::error(503, "server at connection capacity")
        .with_header("Retry-After", &edge.config.retry_after_secs.to_string())
        .with_header("Connection", "close");
    let mut w = std::io::BufWriter::new(stream);
    let _ = wire::write_response(&mut w, &resp);
    let _ = w.flush();
}

fn worker_loop(rx: &mathcloud_telemetry::sync::Mutex<Receiver<Conn>>, edge: &Arc<Edge>) {
    let mut bufs = ConnBuffers::new();
    loop {
        let conn = {
            let guard = rx.lock();
            guard.recv()
        };
        match conn {
            Ok(conn) => serve_connection(conn, edge, &mut bufs),
            // Acceptor gone and queue fully drained: shut down.
            Err(_) => return,
        }
    }
}

/// What one connection's request loop decided.
enum Outcome {
    /// Close the socket (clean end, error, timeout, or `Connection: close`).
    Close,
    /// A streaming response was dispatched: hand the connection to the
    /// streamer set.
    Detach(crate::message::BodyStream),
}

fn serve_connection(mut conn: Conn, edge: &Arc<Edge>, bufs: &mut ConnBuffers) {
    conn.transition("active");
    let _ = conn.stream.set_nodelay(true);
    let _ = conn
        .stream
        .set_write_timeout(Some(edge.config.read_timeout));
    let outcome = {
        let (read_buf, write_buf) = bufs.split();
        let mut reader = ConnReader::new(&conn.stream, read_buf);
        let mut writer = ConnWriter::new(&conn.stream, write_buf);
        request_loop(&conn.stream, &mut reader, &mut writer, edge)
    };
    match outcome {
        Outcome::Close => {}
        Outcome::Detach(body) => {
            conn.transition("streaming");
            let control = edge.stream_control.clone();
            // Moving `conn` keeps its accounting alive for the stream's
            // lifetime; if the pool refused (shutdown), dropping it closes
            // the socket and releases the slot.
            if !edge.streamers.spawn(move || {
                let mut w = std::io::BufWriter::new(&conn.stream);
                let _ = body.run(&mut w, &control);
                let _ = w.flush();
            }) {
                trace::info("http.stream.rejected", None, &[]);
            }
        }
    }
}

/// Waits for the first byte of the next request under the idle timeout,
/// sliced so draining servers reclaim idle connections promptly.
///
/// Returns `Ok(true)` when request bytes are available, `Ok(false)` on a
/// clean close / idle expiry / drain.
fn await_next_request(
    stream: &TcpStream,
    reader: &mut ConnReader<'_>,
    edge: &Edge,
) -> std::io::Result<bool> {
    use std::io::BufRead as _;
    if reader.buffered() > 0 {
        return Ok(true); // pipelined request already in the buffer
    }
    let idle = edge.config.idle_timeout;
    let slice = idle.min(Duration::from_millis(250));
    let started = Instant::now();
    loop {
        stream.set_read_timeout(Some(slice))?;
        match reader.fill_buf() {
            Ok([]) => return Ok(false), // clean EOF
            Ok(_) => return Ok(true),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // The drain check sits *after* the read attempt so a queued
                // connection whose request is already in the socket is
                // still answered during shutdown; only truly idle
                // keep-alives are cut short.
                if edge.draining() || started.elapsed() >= idle {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn request_loop(
    stream: &TcpStream,
    reader: &mut ConnReader<'_>,
    writer: &mut ConnWriter<'_>,
    edge: &Arc<Edge>,
) -> Outcome {
    loop {
        match await_next_request(stream, reader, edge) {
            Ok(true) => {}
            Ok(false) | Err(_) => return Outcome::Close,
        }
        if stream
            .set_read_timeout(Some(edge.config.read_timeout))
            .is_err()
        {
            return Outcome::Close;
        }
        let mut req = match wire::read_request_limited(reader, &edge.limits) {
            Ok(Some(req)) => req,
            Ok(None) => return Outcome::Close, // clean close
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Protocol violation or cap breach: 400 / 413 / 431.
                let status = wire::violation_status(&e);
                let resp =
                    Response::error(status, &e.to_string()).with_header("Connection", "close");
                let _ = wire::write_response(writer, &resp);
                return Outcome::Close;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Mid-request stall: best-effort 408, then close.
                let resp = Response::error(408, "request read timed out")
                    .with_header("Connection", "close");
                let _ = wire::write_response(writer, &resp);
                return Outcome::Close;
            }
            Err(_) => return Outcome::Close, // reset: drop silently
        };
        // The server edge is where request ids enter the platform: honor a
        // well-formed client-supplied X-MC-Request-Id, otherwise mint one.
        // Handlers see it on the request; the response always echoes it.
        let request_id = match req.headers.get(trace::REQUEST_ID_HEADER) {
            Some(rid) if trace::is_valid_request_id(rid) => rid.to_string(),
            _ => trace::next_request_id(),
        };
        req.headers.set(trace::REQUEST_ID_HEADER, &request_id);
        let method = req.method.as_str().to_string();
        let keep = wire::keep_alive(&req) && !edge.draining();
        let request_bytes = req.body.len();
        let started = Instant::now();
        let (mut resp, route) = edge.router.dispatch_labeled(&mut req);
        let labels: &[(&str, &str)] = &[("route", route), ("method", &method)];
        metrics::global()
            .histogram("mc_http_request_seconds", labels)
            .observe_duration(started.elapsed());
        // Body sizes quantify the data-transfer share of platform overhead
        // (§4): powers-of-4 buckets separate control-plane chatter from bulk
        // parameter/file traffic.
        for (direction, bytes) in [("request", request_bytes), ("response", resp.body.len())] {
            metrics::global()
                .histogram_with(
                    "mc_http_body_bytes",
                    &[("route", route), ("direction", direction)],
                    metrics::BODY_SIZE_BUCKETS,
                )
                .observe(bytes as f64);
        }
        let status = resp.status.as_u16().to_string();
        metrics::global()
            .counter(
                "mc_http_requests_total",
                &[("route", route), ("method", &method), ("status", &status)],
            )
            .inc();
        if resp.headers.get(trace::REQUEST_ID_HEADER).is_none() {
            resp.headers.set(trace::REQUEST_ID_HEADER, &request_id);
        }
        if let Some(body) = resp.stream.take() {
            // Streaming response (Server-Sent Events): write the headers
            // without a Content-Length and detach the connection to the
            // streamer set — this worker goes straight back to the pool.
            resp.headers.set("Connection", "close");
            resp.headers.set("Cache-Control", "no-store");
            if wire::write_stream_head(writer, &resp).is_err() {
                return Outcome::Close;
            }
            return Outcome::Detach(body);
        }
        if !keep {
            resp.headers.set("Connection", "close");
        }
        if wire::write_response(writer, &resp).is_err() {
            return Outcome::Close;
        }
        if !keep {
            return Outcome::Close;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::message::{Method, Request};
    use crate::router::PathParams;
    use mathcloud_json::json;

    fn demo_server() -> Server {
        let mut router = Router::new();
        router.get("/ping", |_r, _p: &PathParams| Response::text(200, "pong"));
        router.post("/echo", |r: &Request, _p: &PathParams| {
            Response::bytes(
                200,
                r.headers.get("content-type").unwrap_or("text/plain"),
                r.body.clone(),
            )
        });
        router.get("/json", |_r, _p: &PathParams| {
            Response::json(200, &json!({"ok": true}))
        });
        Server::bind("127.0.0.1:0", router).expect("bind")
    }

    #[test]
    fn serves_basic_requests() {
        let server = demo_server();
        let client = Client::new();
        let resp = client.get(&format!("{}/ping", server.base_url())).unwrap();
        assert_eq!(resp.status.as_u16(), 200);
        assert_eq!(resp.body_string(), "pong");
        let resp = client
            .get(&format!("{}/missing", server.base_url()))
            .unwrap();
        assert_eq!(resp.status.as_u16(), 404);
    }

    #[test]
    fn echoes_large_bodies() {
        let server = demo_server();
        let payload = "x".repeat(2 * 1024 * 1024);
        let req = Request::new(Method::Post, "/echo").with_text(&payload);
        let resp = Client::new()
            .send(&format!("{}/echo", server.base_url()).parse().unwrap(), req)
            .unwrap();
        assert_eq!(resp.body.len(), payload.len());
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = demo_server();
        let base = server.base_url();
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let base = base.clone();
                std::thread::spawn(move || {
                    let resp = Client::new().get(&format!("{base}/json")).unwrap();
                    assert_eq!(resp.body_json().unwrap()["ok"].as_bool(), Some(true));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn keep_alive_reuses_one_connection() {
        let server = demo_server();
        let url: crate::Url = format!("{}/ping", server.base_url()).parse().unwrap();
        let client = Client::new();
        let mut conn = client.connect(&url).unwrap();
        for _ in 0..5 {
            let resp = conn.send(Request::new(Method::Get, "/ping")).unwrap();
            assert_eq!(resp.body_string(), "pong");
        }
    }

    #[test]
    fn pipelined_requests_are_all_answered() {
        use std::io::{Read, Write};
        let server = demo_server();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        // Two requests in one write; both responses must come back.
        s.write_all(b"GET /ping HTTP/1.1\r\nHost: h\r\n\r\nGET /ping HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut buf = String::new();
        let _ = s.read_to_string(&mut buf);
        assert_eq!(buf.matches("HTTP/1.1 200").count(), 2, "{buf}");
        assert_eq!(buf.matches("pong").count(), 2, "{buf}");
    }

    #[test]
    fn shutdown_is_idempotent() {
        let server = demo_server();
        server.shutdown();
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        use std::io::{Read, Write};
        let server = demo_server();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut buf = String::new();
        let _ = s.read_to_string(&mut buf);
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
    }

    #[test]
    fn idle_keep_alive_connection_is_reclaimed() {
        use std::io::Read;
        let mut router = Router::new();
        router.get("/ping", |_r, _p: &PathParams| Response::text(200, "pong"));
        let server = Server::bind_with_config(
            "127.0.0.1:0",
            router,
            ServerConfig {
                workers: 1,
                idle_timeout: Duration::from_millis(100),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        // Never send a request: the server must close the socket after the
        // idle timeout instead of pinning the worker for a full 30 s.
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let started = Instant::now();
        let mut buf = [0u8; 1];
        let n = s.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "server should close the idle connection");
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "idle reclaim took {:?}",
            started.elapsed()
        );
    }
}
