//! Server-Sent Events over the blocking HTTP stack.
//!
//! The server side turns the process-wide [`mathcloud_events::Bus`] into a
//! `GET /events` endpoint: a [`Response::streaming`] body that replays
//! backlog after the client's `Last-Event-ID` (ring first, journal when the
//! ring has moved on), then relays live events, with comment heartbeats so
//! dead clients are detected and worker threads reclaimed. The client side
//! is a minimal incremental `text/event-stream` reader used by
//! `JobHandle::wait` and the workflow engine's `HttpCaller` to subscribe
//! instead of polling.
//!
//! Wire format per event (one [`mathcloud_events::Envelope`] each):
//!
//! ```text
//! id: 42
//! event: job.done
//! data: {"id":42,"kind":"job.done","time_ms":...,"request_id":...,"payload":{...}}
//! ```

use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use mathcloud_events::{Bus, Envelope, KindFilter};

use crate::message::{Method, Request, Response};
use crate::url::Url;
use crate::wire;

/// Default heartbeat interval for `GET /events` streams.
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_secs(15);

/// Connect timeout for client-side subscriptions.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// Writes one envelope in SSE framing and flushes.
fn write_event(w: &mut dyn Write, ev: &Envelope) -> io::Result<()> {
    write!(
        w,
        "id: {}\nevent: {}\ndata: {}\n\n",
        ev.id,
        ev.kind,
        ev.to_json()
    )?;
    w.flush()
}

/// Builds the `GET /events` response over `bus`.
///
/// Query parameters:
///
/// * `kinds=job.,pool.` — comma-separated kind prefixes ([`KindFilter`]),
/// * `heartbeat_ms=...` — comment-heartbeat interval (default 15 s; the
///   heartbeat is how the server notices a vanished client and frees the
///   worker thread),
/// * `after=...` — resume point for clients that cannot set headers.
///
/// The standard `Last-Event-ID` request header takes precedence over
/// `after`; both mean "replay everything newer than this id".
pub fn events_response(req: &Request, bus: &'static Bus) -> Response {
    let filter = KindFilter::parse(&req.query("kinds").unwrap_or_default());
    let after: Option<u64> = req
        .headers
        .get("Last-Event-ID")
        .map(str::to_string)
        .or_else(|| req.query("after"))
        .and_then(|v| v.trim().parse().ok());
    let heartbeat = req
        .query("heartbeat_ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(DEFAULT_HEARTBEAT, |ms| {
            Duration::from_millis(ms.clamp(10, 600_000))
        });

    Response::streaming(200, "text/event-stream", move |w, ctl| {
        // Replay and live attachment happen atomically under the bus lock:
        // no event published in between can be missed or duplicated.
        let (backlog, sub) =
            bus.subscribe_from(after, filter.clone(), mathcloud_events::DEFAULT_QUEUE);
        for ev in &backlog {
            write_event(w, ev)?;
        }
        // Waits are sliced so a stopping server is observed within ~250 ms
        // even with a long heartbeat interval.
        let slice = heartbeat.min(Duration::from_millis(250));
        let mut quiet = Duration::ZERO;
        loop {
            if ctl.is_stopped() {
                return Ok(());
            }
            match sub.recv_timeout(slice) {
                Some(ev) => {
                    write_event(w, &ev)?;
                    quiet = Duration::ZERO;
                }
                None => {
                    quiet += slice;
                    if quiet >= heartbeat {
                        // Comment heartbeat: ignored by clients, but the
                        // write fails once the peer is gone, ending the
                        // stream and freeing the streamer thread.
                        w.write_all(b": hb\n\n")?;
                        w.flush()?;
                        quiet = Duration::ZERO;
                    }
                }
            }
        }
    })
}

/// One parsed item from an event stream.
#[derive(Debug, Clone, PartialEq)]
pub enum SseItem {
    /// A full event.
    Event(SseEvent),
    /// A comment heartbeat (connection alive, nothing new).
    Heartbeat,
    /// The server closed the stream.
    Closed,
}

/// A parsed SSE event.
#[derive(Debug, Clone, PartialEq)]
pub struct SseEvent {
    /// The `id:` field, when numeric.
    pub id: Option<u64>,
    /// The `event:` field (the envelope kind).
    pub kind: String,
    /// The `data:` field — the JSON-serialized envelope.
    pub data: String,
}

impl SseEvent {
    /// Decodes the `data:` field back into an [`Envelope`].
    pub fn envelope(&self) -> Option<Envelope> {
        Envelope::from_json(&mathcloud_json::parse(&self.data).ok()?)
    }
}

/// Why an SSE subscription could not be established.
#[derive(Debug)]
pub enum SubscribeError {
    /// The server answered, but not with an event stream — it predates
    /// `GET /events`. Callers fall back to polling.
    Unsupported(u16),
    /// Transport failure (callers also fall back, then retry).
    Io(io::Error),
}

impl std::fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubscribeError::Unsupported(status) => {
                write!(f, "server does not stream events (HTTP {status})")
            }
            SubscribeError::Io(e) => write!(f, "event stream transport error: {e}"),
        }
    }
}

impl std::error::Error for SubscribeError {}

/// A live client-side event stream.
pub struct EventStream {
    reader: BufReader<TcpStream>,
    /// Highest event id seen, the value to resume with after a drop.
    pub last_id: Option<u64>,
}

/// Opens `GET /events` on `base`'s authority and returns the live stream.
///
/// `kinds` is the comma-separated prefix filter (empty = everything);
/// `last_event_id` resumes after a dropped connection. `read_timeout` bounds
/// every read — pick it larger than the server's heartbeat interval so a
/// healthy-but-quiet stream never times out.
///
/// # Errors
///
/// [`SubscribeError::Unsupported`] when the server predates `/events` (the
/// caller's cue to fall back to polling), [`SubscribeError::Io`] for
/// transport failures.
pub fn subscribe(
    base: &Url,
    kinds: &str,
    last_event_id: Option<u64>,
    connect_timeout: Duration,
    read_timeout: Duration,
) -> Result<EventStream, SubscribeError> {
    let stream = connect(base, connect_timeout).map_err(SubscribeError::Io)?;
    stream
        .set_read_timeout(Some(read_timeout))
        .map_err(SubscribeError::Io)?;
    stream.set_nodelay(true).map_err(SubscribeError::Io)?;

    let target = if kinds.is_empty() {
        "/events".to_string()
    } else {
        format!("/events?kinds={}", crate::url::percent_encode(kinds))
    };
    let mut req = Request::new(Method::Get, &target).with_header("Accept", "text/event-stream");
    if let Some(id) = last_event_id {
        req = req.with_header("Last-Event-ID", &id.to_string());
    }
    let mut writer = stream.try_clone().map_err(SubscribeError::Io)?;
    wire::write_request(&mut writer, &req, &base.authority()).map_err(SubscribeError::Io)?;

    let mut reader = BufReader::new(stream);
    let head = wire::read_response(&mut reader).map_err(SubscribeError::Io)?;
    let is_stream = head.status.as_u16() == 200
        && head
            .headers
            .get("content-type")
            .is_some_and(|ct| ct.starts_with("text/event-stream"));
    if !is_stream {
        return Err(SubscribeError::Unsupported(head.status.as_u16()));
    }
    Ok(EventStream {
        reader,
        last_id: last_event_id,
    })
}

fn connect(url: &Url, timeout: Duration) -> io::Result<TcpStream> {
    let addrs: Vec<_> = (url.host(), url.port()).to_socket_addrs()?.collect();
    let mut last = None;
    for addr in addrs {
        match TcpStream::connect_timeout(&addr, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no addresses resolved")))
}

impl EventStream {
    /// Adjusts the per-read timeout mid-stream (deadline slicing).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn set_read_timeout(&self, timeout: Duration) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(Some(timeout))
    }

    /// Blocks for the next item. A read timeout surfaces as an `Err` of kind
    /// `WouldBlock`/`TimedOut` — with a read timeout above the server's
    /// heartbeat interval that means the server is gone, not just quiet.
    ///
    /// # Errors
    ///
    /// Socket errors and read timeouts.
    pub fn next(&mut self) -> io::Result<SseItem> {
        let mut event = SseEvent {
            id: None,
            kind: String::new(),
            data: String::new(),
        };
        let mut saw_field = false;
        let mut saw_comment = false;
        loop {
            let Some(line) = wire::read_line(&mut self.reader, true)? else {
                return Ok(SseItem::Closed);
            };
            if line.is_empty() {
                if saw_field {
                    if let Some(id) = event.id {
                        self.last_id = Some(id);
                    }
                    return Ok(SseItem::Event(event));
                }
                if saw_comment {
                    return Ok(SseItem::Heartbeat);
                }
                continue;
            }
            if line.starts_with(':') {
                saw_comment = true;
                continue;
            }
            let (field, value) = match line.split_once(':') {
                Some((f, v)) => (f, v.strip_prefix(' ').unwrap_or(v)),
                None => (line.as_str(), ""),
            };
            match field {
                "id" => event.id = value.trim().parse().ok(),
                "event" => event.kind = value.to_string(),
                "data" => {
                    if !event.data.is_empty() {
                        event.data.push('\n');
                    }
                    event.data.push_str(value);
                }
                _ => {} // unknown fields are ignored per the SSE spec
            }
            saw_field = true;
        }
    }
}

impl std::fmt::Debug for EventStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventStream")
            .field("last_id", &self.last_id)
            .finish()
    }
}

/// The terminal state a job watch observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    Done,
    Failed,
    Cancelled,
}

/// How a job watch ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchResult {
    /// A terminal `job.*` event for the watched job arrived.
    Terminal(JobOutcome),
    /// The deadline passed with the job still running.
    TimedOut,
    /// The stream broke after being established (caller may resume with
    /// `Last-Event-ID` or fall back to polling).
    Dropped,
}

/// Watches the `/events` stream on `base`'s authority for a terminal event
/// of `service`/`job_id`, resuming across dropped connections via
/// `Last-Event-ID` until `deadline`.
///
/// This is the push half of the subscribe-first/poll-fallback pattern shared
/// by `JobHandle::wait` and the workflow `HttpCaller`: the caller issues its
/// submit, calls this instead of a poll loop, and on success fetches the
/// final representation with a single status request.
///
/// # Errors
///
/// [`SubscribeError`] when no subscription could be established at all —
/// the caller's cue to use its poll loop.
pub fn watch_job(
    base: &Url,
    service: &str,
    job_id: &str,
    deadline: std::time::Instant,
) -> Result<WatchResult, SubscribeError> {
    let stream = subscribe(base, "job.", None, CONNECT_TIMEOUT, DEFAULT_HEARTBEAT)?;
    Ok(watch_job_on(base, stream, service, job_id, deadline))
}

/// [`watch_job`] over an already-open stream.
///
/// Subscribing *before* submitting the job and handing the stream here
/// closes the race where a fast job publishes its terminal event between the
/// submit response and a later subscription — such an event would otherwise
/// be live-streamed to nobody, leaving the watcher blocked until `deadline`.
pub fn watch_job_on(
    base: &Url,
    mut stream: EventStream,
    service: &str,
    job_id: &str,
    deadline: std::time::Instant,
) -> WatchResult {
    let mut resumed = false;
    loop {
        let now = std::time::Instant::now();
        if now >= deadline {
            return WatchResult::TimedOut;
        }
        // Slice the socket timeout to the deadline, but never below the
        // heartbeat interval detection floor.
        let slice = (deadline - now).min(DEFAULT_HEARTBEAT + Duration::from_secs(5));
        if stream.set_read_timeout(slice).is_err() {
            return WatchResult::Dropped;
        }
        match stream.next() {
            Ok(SseItem::Event(ev)) => {
                let Some(env) = ev.envelope() else { continue };
                let outcome = match env.kind.as_str() {
                    "job.done" => JobOutcome::Done,
                    "job.failed" => JobOutcome::Failed,
                    "job.cancelled" => JobOutcome::Cancelled,
                    _ => continue,
                };
                let matches = env.payload.get("service").and_then(|v| v.as_str()) == Some(service)
                    && env.payload.get("job").and_then(|v| v.as_str()) == Some(job_id);
                if matches {
                    return WatchResult::Terminal(outcome);
                }
            }
            Ok(SseItem::Heartbeat) => {}
            Ok(SseItem::Closed) | Err(_) => {
                // One reconnect attempt with Last-Event-ID; a second drop
                // sends the caller to its poll fallback.
                if resumed {
                    return WatchResult::Dropped;
                }
                resumed = true;
                match subscribe(
                    base,
                    "job.",
                    stream.last_id,
                    CONNECT_TIMEOUT,
                    DEFAULT_HEARTBEAT,
                ) {
                    Ok(s) => stream = s,
                    Err(_) => return WatchResult::Dropped,
                }
            }
        }
    }
}

/// The `{name}` of a `/services/{name}/jobs/{id}` job URI — the service
/// segment the container's `job.*` event payloads carry, needed to filter a
/// watch down to one job.
pub fn service_segment(uri: &str) -> Option<&str> {
    let mut parts = uri.trim_start_matches('/').split('/');
    if parts.next() != Some("services") {
        return None;
    }
    parts.next().filter(|s| !s.is_empty())
}

/// Convenience: mounts `GET /events` over `bus` on a router.
pub fn mount_events(router: &mut crate::Router, bus: &'static Bus) {
    let bus: &'static Bus = bus;
    router.get("/events", move |req: &Request, _p: &crate::PathParams| {
        events_response(req, bus)
    });
}
