//! Fault-tolerance policy for the HTTP client: retries with jittered
//! exponential backoff and per-authority circuit breakers.
//!
//! The availability monitor and the catalogue federation sweep (§3.2 of the
//! paper) probe many containers over unreliable networks; a transport that
//! blocks for the OS connect default or hammers a dead host on every request
//! turns one bad container into a platform-wide stall. This module provides
//! the two policy pieces [`crate::Client`] composes with its connect/IO
//! deadlines:
//!
//! * [`RetryPolicy`] — an attempt cap with capped exponential backoff and
//!   deterministic (seedable) jitter from the in-repo xorshift PRNG. By
//!   default only idempotent `GET`/`DELETE`/`HEAD` requests are retried, and
//!   only on transport errors — HTTP error statuses are application answers,
//!   not transport failures.
//! * [`CircuitBreaker`] / [`BreakerRegistry`] — one breaker per authority
//!   (`host:port`). `Closed` → `Open` after N *consecutive* transport
//!   failures; while open, calls fail fast without touching the socket.
//!   After a cooldown one half-open probe is admitted: success closes the
//!   breaker, failure re-opens it.
//!
//! Both pieces are observable: `mc_http_retries_total` and
//! `mc_http_breaker_rejections_total` counters, the `mc_http_breaker_state`
//! gauge (0 = closed, 1 = open, 2 = half-open) and `http.breaker.*` trace
//! events, all labelled by authority.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use mathcloud_telemetry::rng::XorShift64;
use mathcloud_telemetry::sync::Mutex;
use mathcloud_telemetry::{metrics, trace};

use crate::message::Method;

fn describe_metrics() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let reg = metrics::global();
        reg.describe(
            "mc_http_retries_total",
            "idempotent requests re-sent after a transport failure",
        );
        reg.describe(
            "mc_http_breaker_state",
            "circuit-breaker state per authority: 0 closed, 1 open, 2 half-open",
        );
        reg.describe(
            "mc_http_breaker_rejections_total",
            "requests rejected fast because the authority's breaker was open",
        );
    });
}

/// Record one retry against `authority` (called by the client's send loop).
pub(crate) fn record_retry(authority: &str) {
    describe_metrics();
    metrics::global()
        .counter("mc_http_retries_total", &[("authority", authority)])
        .inc();
}

/// When and how often a failed request is re-sent.
///
/// The backoff before retry `n` (1-based) is `base_backoff * 2^(n-1)`,
/// capped at `max_backoff`, then multiplied by a jitter factor drawn
/// uniformly from `[1 - jitter, 1]` — so a fleet of clients with different
/// PRNG states spreads its retries instead of thundering in lockstep, while
/// a seeded schedule stays fully deterministic (see [`RetryPolicy::schedule`]).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Fraction of the backoff randomly shaved off, in `[0, 1]`.
    pub jitter: f64,
    /// Also retry `POST`/`PUT`/`PATCH`. Off by default: re-sending a
    /// non-idempotent request can duplicate a job submission.
    pub retry_non_idempotent: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter: 0.5,
            retry_non_idempotent: false,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (probe sweeps use this: the per-target
    /// deadline is the whole budget).
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Whether this policy retries requests with the given method.
    pub fn applies_to(&self, method: &Method) -> bool {
        self.retry_non_idempotent || matches!(method, Method::Get | Method::Delete | Method::Head)
    }

    /// The jittered backoff before retry `retry` (1-based), drawing the
    /// jitter from `rng`.
    pub fn backoff(&self, retry: u32, rng: &mut XorShift64) -> Duration {
        let exp = retry.saturating_sub(1).min(20);
        let nominal = self.base_backoff.as_secs_f64() * (1u64 << exp) as f64;
        let capped = nominal.min(self.max_backoff.as_secs_f64());
        let jitter = self.jitter.clamp(0.0, 1.0);
        let factor = 1.0 - jitter * rng.unit_f64();
        Duration::from_secs_f64(capped * factor)
    }

    /// The full backoff schedule (one entry per possible retry) for a given
    /// PRNG seed. Deterministic: the same policy and seed always produce the
    /// same schedule, which is what the regression tests pin down.
    pub fn schedule(&self, seed: u64) -> Vec<Duration> {
        let mut rng = XorShift64::new(seed);
        (1..self.max_attempts)
            .map(|retry| self.backoff(retry, &mut rng))
            .collect()
    }
}

/// When a breaker trips and how long it stays open.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive transport failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects calls before admitting a half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// Circuit-breaker states (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every call is admitted.
    Closed,
    /// Tripped: calls are rejected until the cooldown elapses.
    Open,
    /// One probe is in flight; its outcome closes or re-opens the breaker.
    HalfOpen,
}

impl BreakerState {
    /// The value exported on the `mc_http_breaker_state` gauge.
    pub fn as_gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

struct BreakerCore {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    /// A half-open probe is in flight; further calls are rejected until it
    /// reports back.
    probing: bool,
}

/// The breaker guarding one authority. Obtained from a [`BreakerRegistry`];
/// shared by every clone of the owning client.
pub struct CircuitBreaker {
    authority: String,
    config: BreakerConfig,
    core: Mutex<BreakerCore>,
}

impl CircuitBreaker {
    fn new(authority: &str, config: BreakerConfig) -> Self {
        CircuitBreaker {
            authority: authority.to_string(),
            config,
            core: Mutex::new(BreakerCore {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probing: false,
            }),
        }
    }

    fn set_gauge(&self, state: BreakerState) {
        describe_metrics();
        metrics::global()
            .gauge("mc_http_breaker_state", &[("authority", &self.authority)])
            .set(state.as_gauge());
    }

    /// Announces a state transition on the event bus (`breaker.state`).
    fn publish_transition(&self, from: BreakerState, to: BreakerState) {
        mathcloud_events::global().publish(
            "breaker.state",
            None,
            mathcloud_json::json!({
                "authority": (self.authority.as_str()),
                "from": (from.as_str()),
                "state": (to.as_str()),
            }),
        );
    }

    /// Asks the breaker whether a call may proceed.
    ///
    /// # Errors
    ///
    /// The remaining cooldown when the breaker is open (zero when rejected
    /// because a half-open probe is already in flight).
    pub fn admit(&self) -> Result<(), Duration> {
        let mut core = self.core.lock();
        match core.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open => {
                let elapsed = core
                    .opened_at
                    .map(|t| t.elapsed())
                    .unwrap_or(self.config.cooldown);
                if elapsed >= self.config.cooldown {
                    core.state = BreakerState::HalfOpen;
                    core.probing = true;
                    drop(core);
                    self.set_gauge(BreakerState::HalfOpen);
                    self.publish_transition(BreakerState::Open, BreakerState::HalfOpen);
                    trace::info(
                        "http.breaker.half_open",
                        None,
                        &[("authority", &self.authority)],
                    );
                    Ok(())
                } else {
                    drop(core);
                    self.reject();
                    Err(self.config.cooldown - elapsed)
                }
            }
            BreakerState::HalfOpen => {
                if core.probing {
                    drop(core);
                    self.reject();
                    Err(Duration::ZERO)
                } else {
                    core.probing = true;
                    Ok(())
                }
            }
        }
    }

    fn reject(&self) {
        describe_metrics();
        metrics::global()
            .counter(
                "mc_http_breaker_rejections_total",
                &[("authority", &self.authority)],
            )
            .inc();
    }

    /// Reports a successful exchange: closes the breaker and resets the
    /// failure streak.
    pub fn on_success(&self) {
        let mut core = self.core.lock();
        let was = core.state;
        core.state = BreakerState::Closed;
        core.consecutive_failures = 0;
        core.opened_at = None;
        core.probing = false;
        drop(core);
        if was != BreakerState::Closed {
            self.set_gauge(BreakerState::Closed);
            self.publish_transition(was, BreakerState::Closed);
            trace::info(
                "http.breaker.close",
                None,
                &[("authority", &self.authority)],
            );
        }
    }

    /// Reports a transport failure: trips the breaker after the configured
    /// streak, and re-opens immediately from half-open.
    pub fn on_failure(&self) {
        let mut core = self.core.lock();
        core.probing = false;
        core.consecutive_failures = core.consecutive_failures.saturating_add(1);
        let trip = match core.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => core.consecutive_failures >= self.config.failure_threshold,
            BreakerState::Open => false,
        };
        if trip {
            let was = core.state;
            core.state = BreakerState::Open;
            core.opened_at = Some(Instant::now());
            let failures = core.consecutive_failures;
            drop(core);
            self.set_gauge(BreakerState::Open);
            self.publish_transition(was, BreakerState::Open);
            trace::warn(
                "http.breaker.open",
                None,
                &[
                    ("authority", &self.authority),
                    ("consecutive_failures", &failures.to_string()),
                ],
            );
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.core.lock().state
    }
}

impl fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("authority", &self.authority)
            .field("state", &self.state())
            .finish()
    }
}

/// One [`CircuitBreaker`] per authority, created on first use. A client and
/// all its clones share one registry, so breaker state survives across
/// requests and availability sweeps.
pub struct BreakerRegistry {
    config: BreakerConfig,
    map: Mutex<HashMap<String, Arc<CircuitBreaker>>>,
}

impl BreakerRegistry {
    pub fn new(config: BreakerConfig) -> Self {
        BreakerRegistry {
            config,
            map: Mutex::new(HashMap::new()),
        }
    }

    /// The breaker for `authority`, created closed on first sight.
    pub fn breaker(&self, authority: &str) -> Arc<CircuitBreaker> {
        let mut map = self.map.lock();
        map.entry(authority.to_string())
            .or_insert_with(|| Arc::new(CircuitBreaker::new(authority, self.config.clone())))
            .clone()
    }

    /// The state of `authority`'s breaker, if one exists yet.
    pub fn state_of(&self, authority: &str) -> Option<BreakerState> {
        self.map.lock().get(authority).map(|b| b.state())
    }

    /// A sorted snapshot of every known authority and its breaker state —
    /// the raw material of the `GET /health/all` breakers column.
    pub fn states(&self) -> Vec<(String, BreakerState)> {
        let mut out: Vec<(String, BreakerState)> = self
            .map
            .lock()
            .iter()
            .map(|(a, b)| (a.clone(), b.state()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl fmt::Debug for BreakerRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BreakerRegistry")
            .field("authorities", &self.map.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let policy = RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.schedule(42), policy.schedule(42));
        assert_ne!(
            policy.schedule(42),
            policy.schedule(43),
            "different seeds should jitter differently"
        );
        assert_eq!(policy.schedule(42).len(), 5, "one backoff per retry");
        assert!(RetryPolicy::disabled().schedule(1).is_empty());
    }

    #[test]
    fn backoff_grows_exponentially_within_jitter_bounds() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(1),
            jitter: 0.5,
            retry_non_idempotent: false,
        };
        for seed in [1u64, 7, 99] {
            for (i, pause) in policy.schedule(seed).iter().enumerate() {
                let nominal = 0.1 * (1u64 << i) as f64;
                let capped = nominal.min(1.0);
                let secs = pause.as_secs_f64();
                assert!(
                    secs <= capped + 1e-9 && secs >= capped * 0.5 - 1e-9,
                    "retry {} out of bounds: {secs}s vs nominal {capped}s",
                    i + 1
                );
            }
        }
        // Zero jitter reproduces the exact exponential series.
        let exact = RetryPolicy {
            jitter: 0.0,
            ..policy
        };
        assert_eq!(
            exact.schedule(5),
            vec![
                Duration::from_millis(100),
                Duration::from_millis(200),
                Duration::from_millis(400),
                Duration::from_millis(800),
                Duration::from_secs(1),
                Duration::from_secs(1),
                Duration::from_secs(1),
            ]
        );
    }

    #[test]
    fn retries_cover_idempotent_methods_only_by_default() {
        let policy = RetryPolicy::default();
        assert!(policy.applies_to(&Method::Get));
        assert!(policy.applies_to(&Method::Delete));
        assert!(policy.applies_to(&Method::Head));
        assert!(!policy.applies_to(&Method::Post));
        assert!(!policy.applies_to(&Method::Put));
        let eager = RetryPolicy {
            retry_non_idempotent: true,
            ..policy
        };
        assert!(eager.applies_to(&Method::Post));
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_rejects() {
        let b = CircuitBreaker::new(
            "unit-open:1",
            BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_secs(60),
            },
        );
        for _ in 0..2 {
            assert!(b.admit().is_ok());
            b.on_failure();
            assert_eq!(b.state(), BreakerState::Closed);
        }
        assert!(b.admit().is_ok());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        let remaining = b.admit().unwrap_err();
        assert!(remaining > Duration::from_secs(50));
        assert_eq!(
            metrics::global().gauge_value("mc_http_breaker_state", &[("authority", "unit-open:1")]),
            Some(1)
        );
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = CircuitBreaker::new(
            "unit-streak:1",
            BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(60),
            },
        );
        b.on_failure();
        b.on_success();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was interrupted");
    }

    #[test]
    fn half_open_probe_closes_or_reopens() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(20),
        };
        // Failure path: the probe fails, the breaker re-opens.
        let b = CircuitBreaker::new("unit-half:1", cfg.clone());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.admit().is_err(), "cooldown not elapsed");
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.admit().is_ok(), "half-open probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(
            b.admit().is_err(),
            "only one probe in flight during half-open"
        );
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);

        // Success path: the probe closes the breaker.
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.admit().is_ok());
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit().is_ok());
        assert_eq!(
            metrics::global().gauge_value("mc_http_breaker_state", &[("authority", "unit-half:1")]),
            Some(0)
        );
    }

    #[test]
    fn registry_hands_out_one_breaker_per_authority() {
        let reg = BreakerRegistry::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(60),
        });
        assert!(reg.state_of("a:1").is_none(), "no breaker before first use");
        let b1 = reg.breaker("a:1");
        let b2 = reg.breaker("a:1");
        assert!(Arc::ptr_eq(&b1, &b2));
        b1.on_failure();
        assert_eq!(reg.state_of("a:1"), Some(BreakerState::Open));
        assert_eq!(reg.breaker("b:1").state(), BreakerState::Closed);
    }
}
