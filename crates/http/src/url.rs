//! URLs, percent-encoding and query strings.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A parsed absolute `http://` URL.
///
/// Only the `http` scheme is supported: transport security in this
/// reproduction is simulated at the application layer by `mathcloud-security`
/// (see DESIGN.md), so the wire protocol is plain HTTP.
///
/// # Examples
///
/// ```
/// use mathcloud_http::Url;
///
/// let u: Url = "http://localhost:9000/services/inverse?mode=fast".parse().unwrap();
/// assert_eq!(u.host(), "localhost");
/// assert_eq!(u.port(), 9000);
/// assert_eq!(u.path(), "/services/inverse");
/// assert_eq!(u.query(), Some("mode=fast"));
/// assert_eq!(u.authority(), "localhost:9000");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    host: String,
    port: u16,
    path: String,
    query: Option<String>,
}

/// Error from URL parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlError(String);

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid url: {}", self.0)
    }
}

impl Error for UrlError {}

impl Url {
    /// The host name or address.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The port (default 80 when absent).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The path, always beginning with `/`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The raw query string, if present.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// `host:port`, the value used for `Host` headers and socket connects.
    pub fn authority(&self) -> String {
        format!("{}:{}", self.host, self.port)
    }

    /// Path plus query, the HTTP request target.
    pub fn target(&self) -> String {
        match &self.query {
            Some(q) => format!("{}?{}", self.path, q),
            None => self.path.clone(),
        }
    }

    /// Builds a sibling URL on the same authority with a new target.
    ///
    /// `target` must start with `/`; it may include a query string.
    ///
    /// # Examples
    ///
    /// ```
    /// use mathcloud_http::Url;
    ///
    /// let base: Url = "http://localhost:9000/services/inverse".parse().unwrap();
    /// let job = base.with_target("/services/inverse/jobs/7");
    /// assert_eq!(job.to_string(), "http://localhost:9000/services/inverse/jobs/7");
    /// ```
    pub fn with_target(&self, target: &str) -> Url {
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (target.to_string(), None),
        };
        Url {
            host: self.host.clone(),
            port: self.port,
            path,
            query,
        }
    }

    /// Joins a relative reference: absolute targets replace the path,
    /// other references are appended to the current path.
    pub fn join(&self, reference: &str) -> Url {
        if reference.starts_with('/') {
            self.with_target(reference)
        } else {
            let base = self.path.trim_end_matches('/');
            self.with_target(&format!("{base}/{reference}"))
        }
    }
}

impl FromStr for Url {
    type Err = UrlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix("http://")
            .ok_or_else(|| UrlError(format!("{s:?} (only http:// is supported)")))?;
        let (authority, target) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(UrlError(format!("{s:?} (empty host)")));
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p
                    .parse()
                    .map_err(|_| UrlError(format!("{s:?} (bad port)")))?;
                (h.to_string(), port)
            }
            None => (authority.to_string(), 80),
        };
        if host.is_empty() {
            return Err(UrlError(format!("{s:?} (empty host)")));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (target.to_string(), None),
        };
        Ok(Url {
            host,
            port,
            path,
            query,
        })
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "http://{}:{}{}", self.host, self.port, self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

/// Bytes that do not need percent-encoding in path segments and query
/// components (RFC 3986 unreserved set).
fn is_unreserved(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~')
}

/// Percent-encodes a string for use in a path segment or query component.
///
/// # Examples
///
/// ```
/// use mathcloud_http::percent_encode;
///
/// assert_eq!(percent_encode("matrix inversion/2"), "matrix%20inversion%2F2");
/// ```
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        if is_unreserved(b) {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}

/// Decodes percent escapes (and `+` as space, as query strings use).
///
/// Malformed escapes are passed through literally rather than rejected,
/// matching the forgiving behaviour of deployed web servers.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let Ok(v) = u8::from_str_radix(&s[i + 1..i + 3], 16) {
                out.push(v);
                i += 3;
                continue;
            }
            out.push(b'%');
            i += 1;
        } else if bytes[i] == b'+' {
            out.push(b' ');
            i += 1;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Decodes a query string into ordered key/value pairs.
pub fn decode_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Encodes key/value pairs into a query string.
pub fn encode_query(pairs: &[(String, String)]) -> String {
    pairs
        .iter()
        .map(|(k, v)| format!("{}={}", percent_encode(k), percent_encode(v)))
        .collect::<Vec<_>>()
        .join("&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_variants() {
        let u: Url = "http://example.org".parse().unwrap();
        assert_eq!(
            (u.host(), u.port(), u.path(), u.query()),
            ("example.org", 80, "/", None)
        );
        let u: Url = "http://10.0.0.1:8080/a/b?x=1".parse().unwrap();
        assert_eq!(
            (u.host(), u.port(), u.path(), u.query()),
            ("10.0.0.1", 8080, "/a/b", Some("x=1"))
        );
    }

    #[test]
    fn parse_rejects_bad_urls() {
        assert!("https://secure".parse::<Url>().is_err());
        assert!("ftp://x".parse::<Url>().is_err());
        assert!("http://".parse::<Url>().is_err());
        assert!("http://host:notaport/".parse::<Url>().is_err());
        assert!("/relative".parse::<Url>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for s in ["http://h:9000/", "http://h:80/a?b=c", "http://h:1/x/y/z"] {
            let u: Url = s.parse().unwrap();
            assert_eq!(u.to_string(), s);
            assert_eq!(u.to_string().parse::<Url>().unwrap(), u);
        }
    }

    #[test]
    fn join_and_with_target() {
        let base: Url = "http://h:9000/services/sum".parse().unwrap();
        assert_eq!(base.join("jobs/3").path(), "/services/sum/jobs/3");
        assert_eq!(base.join("/other").path(), "/other");
        assert_eq!(base.with_target("/p?q=1").query(), Some("q=1"));
    }

    #[test]
    fn percent_codec_round_trip() {
        for s in ["plain", "with space", "кириллица", "a/b?c&d=e", "100%"] {
            assert_eq!(percent_decode(&percent_encode(s)), s);
        }
    }

    #[test]
    fn decode_handles_plus_and_malformed() {
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%4"), "%4");
    }

    #[test]
    fn query_codec() {
        let pairs = vec![
            ("q".to_string(), "matrix inversion".to_string()),
            ("tag".to_string(), "ill=conditioned&exact".to_string()),
        ];
        let encoded = encode_query(&pairs);
        assert_eq!(decode_query(&encoded), pairs);
        assert_eq!(
            decode_query("lonely"),
            vec![("lonely".to_string(), String::new())]
        );
        assert!(decode_query("").is_empty());
    }
}
