//! Per-worker connection buffers, reused across keep-alive requests and
//! across the connections a worker serves.
//!
//! The previous edge allocated a fresh `BufReader` + `BufWriter` (16 KiB of
//! zeroed heap) for every accepted connection. Under keep-alive + high
//! connection churn that allocation sits on the hot path; here each pool
//! worker owns one [`ConnBuffers`] for its lifetime, and [`ConnReader`] /
//! [`ConnWriter`] borrow those buffers per connection. Read state
//! (`pos`/`filled`) lives in the reader so pipelined bytes survive between
//! requests of one connection and are discarded between connections, while
//! the backing storage is allocated exactly once per worker.
//!
//! The writer is a classic buffered writer with a write-through path:
//! payloads at least as large as the buffer are flushed and written
//! directly, so multi-megabyte result bodies never balloon the reusable
//! buffer past [`WRITE_BUF`].

use std::io::{self, BufRead, Read, Write};
use std::net::TcpStream;

/// Size of the reusable read buffer (header sections and small bodies).
pub(crate) const READ_BUF: usize = 16 * 1024;

/// Size of the reusable write buffer; larger writes go straight to the
/// socket.
pub(crate) const WRITE_BUF: usize = 64 * 1024;

/// One worker's reusable buffer storage.
pub(crate) struct ConnBuffers {
    read: Vec<u8>,
    write: Vec<u8>,
}

impl ConnBuffers {
    pub(crate) fn new() -> ConnBuffers {
        ConnBuffers {
            read: vec![0u8; READ_BUF],
            write: Vec::with_capacity(WRITE_BUF),
        }
    }

    /// Splits into the per-connection reader/writer storage.
    pub(crate) fn split(&mut self) -> (&mut Vec<u8>, &mut Vec<u8>) {
        (&mut self.read, &mut self.write)
    }
}

/// A buffered reader over a borrowed [`TcpStream`] using worker-owned
/// storage.
pub(crate) struct ConnReader<'a> {
    stream: &'a TcpStream,
    buf: &'a mut Vec<u8>,
    pos: usize,
    filled: usize,
}

impl<'a> ConnReader<'a> {
    pub(crate) fn new(stream: &'a TcpStream, buf: &'a mut Vec<u8>) -> ConnReader<'a> {
        if buf.len() < READ_BUF {
            buf.resize(READ_BUF, 0);
        }
        ConnReader {
            stream,
            buf,
            pos: 0,
            filled: 0,
        }
    }

    /// Bytes already read off the socket but not yet consumed (a pipelined
    /// next request).
    pub(crate) fn buffered(&self) -> usize {
        self.filled - self.pos
    }
}

impl Read for ConnReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.buffered() == 0 {
            // Large reads (bodies) bypass the buffer entirely.
            if out.len() >= self.buf.len() {
                return self.stream.read(out);
            }
            self.fill_buf()?;
        }
        let n = self.buffered().min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl BufRead for ConnReader<'_> {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        if self.pos >= self.filled {
            self.filled = self.stream.read(self.buf)?;
            self.pos = 0;
        }
        Ok(&self.buf[self.pos..self.filled])
    }

    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.filled);
    }
}

/// A buffered writer over a borrowed [`TcpStream`] using worker-owned
/// storage; write-through for payloads of [`WRITE_BUF`] bytes or more.
pub(crate) struct ConnWriter<'a> {
    stream: &'a TcpStream,
    buf: &'a mut Vec<u8>,
}

impl<'a> ConnWriter<'a> {
    pub(crate) fn new(stream: &'a TcpStream, buf: &'a mut Vec<u8>) -> ConnWriter<'a> {
        buf.clear();
        ConnWriter { stream, buf }
    }

    fn flush_buf(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.stream.write_all(self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }
}

impl Write for ConnWriter<'_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if self.buf.len() + data.len() > WRITE_BUF {
            self.flush_buf()?;
        }
        if data.len() >= WRITE_BUF {
            self.stream.write_all(data)?;
        } else {
            self.buf.extend_from_slice(data);
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_buf()?;
        self.stream.flush()
    }
}

impl Drop for ConnWriter<'_> {
    fn drop(&mut self) {
        let _ = self.flush_buf();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn reader_preserves_pipelined_bytes_and_reuses_storage() {
        let (client, server) = pair();
        use std::io::Write as _;
        (&client).write_all(b"firstsecond").unwrap();
        let mut bufs = ConnBuffers::new();
        let (read_buf, _) = bufs.split();
        let mut reader = ConnReader::new(&server, read_buf);
        let mut first = [0u8; 5];
        reader.read_exact(&mut first).unwrap();
        assert_eq!(&first, b"first");
        assert_eq!(reader.buffered(), 6, "pipelined bytes retained");
        let mut second = [0u8; 6];
        reader.read_exact(&mut second).unwrap();
        assert_eq!(&second, b"second");
    }

    #[test]
    fn writer_write_through_keeps_buffer_bounded() {
        let (client, server) = pair();
        let big = vec![7u8; WRITE_BUF * 2];
        let mut bufs = ConnBuffers::new();
        {
            let (_, write_buf) = bufs.split();
            let mut writer = ConnWriter::new(&server, write_buf);
            writer.write_all(b"head").unwrap();
            writer.write_all(&big).unwrap();
            writer.flush().unwrap();
            assert!(
                writer.buf.capacity() <= WRITE_BUF + 4096,
                "buffer ballooned"
            );
        }
        let mut got = vec![0u8; 4 + big.len()];
        use std::io::Read as _;
        (&client).read_exact(&mut got).unwrap();
        assert_eq!(&got[..4], b"head");
        assert_eq!(&got[4..], &big[..]);
    }

    #[test]
    fn large_reads_bypass_the_buffer() {
        let (client, server) = pair();
        use std::io::Write as _;
        let payload = vec![3u8; READ_BUF * 2];
        let sender = {
            let payload = payload.clone();
            std::thread::spawn(move || (&client).write_all(&payload).unwrap())
        };
        let mut bufs = ConnBuffers::new();
        let (read_buf, _) = bufs.split();
        let mut reader = ConnReader::new(&server, read_buf);
        let mut got = vec![0u8; payload.len()];
        reader.read_exact(&mut got).unwrap();
        assert_eq!(got, payload);
        sender.join().unwrap();
    }
}
