//! A from-scratch HTTP/1.1 stack for the MathCloud platform.
//!
//! The paper's platform is built on Jersey + Jetty; this crate is the Rust
//! replacement, written directly on `std::net`:
//!
//! * [`Request`] / [`Response`] / [`Headers`] / [`Method`] / [`StatusCode`] —
//!   the message model,
//! * [`Url`] plus percent-encoding and query-string codecs,
//! * [`Router`] — method + path-template dispatch (`/services/{name}/jobs/{id}`),
//! * [`Server`] — a blocking server with a worker thread pool and keep-alive,
//! * [`Client`] — a blocking client used by the catalogue, the workflow
//!   engine and the command-line tools, with a fault-tolerant transport
//!   ([`RetryPolicy`], per-authority circuit breakers — see [`transport`]).
//!
//! # Examples
//!
//! ```
//! use mathcloud_http::{Client, Response, Router, Server};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut router = Router::new();
//! router.get("/hello/{name}", |_req, params| {
//!     Response::text(200, &format!("hello, {}", params.get("name").unwrap()))
//! });
//! let server = Server::bind("127.0.0.1:0", router)?;
//! let url = format!("http://{}/hello/world", server.local_addr());
//!
//! let resp = Client::new().get(&url)?;
//! assert_eq!(resp.status.as_u16(), 200);
//! assert_eq!(resp.body_string(), "hello, world");
//! # server.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod client;
mod conn;
pub mod message;
pub mod router;
pub mod server;
pub mod sse;
pub mod transport;
pub mod url;
pub mod wire;

pub use client::{Client, ClientError};
pub use message::{
    BodyStream, Headers, Method, Request, Response, StatusCode, StreamControl,
    IDEMPOTENCY_KEY_HEADER, MEMO_HIT_HEADER,
};
pub use router::{PathParams, Router};
pub use server::{Server, ServerConfig};
pub use transport::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
pub use url::{decode_query, encode_query, percent_decode, percent_encode, Url, UrlError};
