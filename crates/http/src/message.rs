//! HTTP message model: methods, status codes, headers, requests, responses.

use std::fmt;
use std::io;
use std::sync::Arc;

use mathcloud_json::Value;

/// The header a client sets to make a `POST` submission idempotent: the
/// server creates at most one job per `(service, key)` and answers retries
/// with the original job. A request carrying this header is safe for the
/// client to retry even though `POST` is not idempotent in general
/// ([`crate::RetryPolicy`] honours this).
pub const IDEMPOTENCY_KEY_HEADER: &str = "Idempotency-Key";

/// The response header a container sets (value `"true"`) when a submission
/// was answered from its result memo cache: the body carries an existing —
/// usually already `DONE` — job with the same canonical inputs instead of a
/// freshly created one.
pub const MEMO_HIT_HEADER: &str = "X-MC-Memo-Hit";

/// An HTTP request method.
///
/// The MathCloud unified REST API (Table 1 of the paper) only needs `GET`,
/// `POST` and `DELETE`, but the full standard set is modeled so the router
/// can return correct `405` responses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `PUT`
    Put,
    /// `DELETE`
    Delete,
    /// `HEAD`
    Head,
    /// `OPTIONS`
    Options,
    /// `PATCH`
    Patch,
    /// Any extension method.
    Other(String),
}

impl Method {
    /// Parses a method token (case-sensitive, per RFC 9110).
    pub fn from_token(token: &str) -> Method {
        match token {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "HEAD" => Method::Head,
            "OPTIONS" => Method::Options,
            "PATCH" => Method::Patch,
            other => Method::Other(other.to_string()),
        }
    }

    /// The wire token for this method.
    pub fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
            Method::Options => "OPTIONS",
            Method::Patch => "PATCH",
            Method::Other(s) => s,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An HTTP status code.
///
/// # Examples
///
/// ```
/// use mathcloud_http::StatusCode;
///
/// assert_eq!(StatusCode::OK.as_u16(), 200);
/// assert_eq!(StatusCode::NOT_FOUND.reason(), "Not Found");
/// assert!(StatusCode::from(503).is_server_error());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatusCode(u16);

impl StatusCode {
    /// `200 OK`
    pub const OK: StatusCode = StatusCode(200);
    /// `201 Created`
    pub const CREATED: StatusCode = StatusCode(201);
    /// `202 Accepted`
    pub const ACCEPTED: StatusCode = StatusCode(202);
    /// `204 No Content`
    pub const NO_CONTENT: StatusCode = StatusCode(204);
    /// `400 Bad Request`
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// `401 Unauthorized`
    pub const UNAUTHORIZED: StatusCode = StatusCode(401);
    /// `403 Forbidden`
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// `404 Not Found`
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// `405 Method Not Allowed`
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    /// `409 Conflict`
    pub const CONFLICT: StatusCode = StatusCode(409);
    /// `408 Request Timeout`
    pub const REQUEST_TIMEOUT: StatusCode = StatusCode(408);
    /// `413 Payload Too Large`
    pub const PAYLOAD_TOO_LARGE: StatusCode = StatusCode(413);
    /// `431 Request Header Fields Too Large`
    pub const HEADER_FIELDS_TOO_LARGE: StatusCode = StatusCode(431);
    /// `500 Internal Server Error`
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// `503 Service Unavailable`
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// The numeric code.
    pub fn as_u16(self) -> u16 {
        self.0
    }

    /// Returns `true` for 2xx codes.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// Returns `true` for 4xx codes.
    pub fn is_client_error(self) -> bool {
        (400..500).contains(&self.0)
    }

    /// Returns `true` for 5xx codes.
    pub fn is_server_error(self) -> bool {
        (500..600).contains(&self.0)
    }

    /// The canonical reason phrase (empty for unknown codes).
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            204 => "No Content",
            207 => "Multi-Status",
            301 => "Moved Permanently",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            411 => "Length Required",
            413 => "Payload Too Large",
            415 => "Unsupported Media Type",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "",
        }
    }
}

impl From<u16> for StatusCode {
    fn from(code: u16) -> Self {
        StatusCode(code)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// An ordered, case-insensitive multimap of HTTP header fields.
///
/// # Examples
///
/// ```
/// use mathcloud_http::Headers;
///
/// let mut h = Headers::new();
/// h.set("Content-Type", "application/json");
/// assert_eq!(h.get("content-type"), Some("application/json"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Self {
        Headers::default()
    }

    /// Returns the first value for `name` (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Returns every value for `name` (case-insensitive).
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Replaces all values of `name` with a single value.
    pub fn set(&mut self, name: &str, value: &str) {
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.entries.push((name.to_string(), value.to_string()));
    }

    /// Appends a value without removing existing ones.
    pub fn append(&mut self, name: &str, value: &str) {
        self.entries.push((name.to_string(), value.to_string()));
    }

    /// Removes all values of `name`.
    pub fn remove(&mut self, name: &str) {
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
    }

    /// Returns `true` if `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Iterates `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of header fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no fields are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The request target as received (path plus optional `?query`).
    pub target: String,
    /// Header fields.
    pub headers: Headers,
    /// The request body (possibly empty).
    pub body: Vec<u8>,
}

impl Request {
    /// Creates a request with an empty body.
    pub fn new(method: Method, target: &str) -> Self {
        Request {
            method,
            target: target.to_string(),
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// The path portion of the target (before `?`), percent-decoded per
    /// segment boundaries left intact.
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((path, _)) => path,
            None => &self.target,
        }
    }

    /// The raw query string (after `?`), if any.
    pub fn query_raw(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Decoded query parameters in order of appearance.
    pub fn query_pairs(&self) -> Vec<(String, String)> {
        self.query_raw()
            .map(crate::url::decode_query)
            .unwrap_or_default()
    }

    /// First query parameter named `key`.
    pub fn query(&self, key: &str) -> Option<String> {
        self.query_pairs()
            .into_iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Sets a JSON body with the matching content type (builder style).
    pub fn with_json(mut self, value: &Value) -> Self {
        self.body = value.to_string().into_bytes();
        self.headers.set("Content-Type", "application/json");
        self
    }

    /// Sets a plain-text body (builder style).
    pub fn with_text(mut self, text: &str) -> Self {
        self.body = text.as_bytes().to_vec();
        self.headers
            .set("Content-Type", "text/plain; charset=utf-8");
        self
    }

    /// Sets a header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.set(name, value);
        self
    }

    /// The body as UTF-8 text (lossy).
    pub fn body_string(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns the JSON parse error for malformed bodies.
    pub fn body_json(&self) -> Result<Value, mathcloud_json::ParseError> {
        mathcloud_json::parse(&self.body_string())
    }
}

/// Cooperative stop signal handed to streaming response bodies.
///
/// The server sets it when it begins shutting down; long-lived streams
/// (Server-Sent Events) poll it between writes and return promptly instead
/// of holding their streamer thread until the next heartbeat.
#[derive(Clone, Debug, Default)]
pub struct StreamControl {
    stop: Arc<std::sync::atomic::AtomicBool>,
}

impl StreamControl {
    /// A fresh, un-signalled control (what tests and standalone
    /// [`BodyStream::run`] callers pass).
    pub fn new() -> Self {
        StreamControl::default()
    }

    /// Signals every stream holding a clone of this control to finish.
    pub fn stop(&self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Whether the server asked the stream to finish.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(std::sync::atomic::Ordering::SeqCst)
    }
}

/// A streaming response body: a callback that takes over the connection's
/// writer after the header section is sent (Server-Sent Events).
///
/// The connection closes when the callback returns, so `Content-Length` is
/// never needed; a write error means the client went away and the callback
/// should simply return. The [`StreamControl`] is the server's shutdown
/// signal — well-behaved streams poll it between blocking waits.
#[derive(Clone)]
pub struct BodyStream(
    Arc<dyn Fn(&mut dyn io::Write, &StreamControl) -> io::Result<()> + Send + Sync>,
);

impl BodyStream {
    /// Runs the stream over `writer` until it finishes, the peer goes away,
    /// or `control` is stopped.
    ///
    /// # Errors
    ///
    /// Propagates the first write error (usually a vanished client).
    pub fn run(&self, writer: &mut dyn io::Write, control: &StreamControl) -> io::Result<()> {
        (self.0)(writer, control)
    }
}

impl fmt::Debug for BodyStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BodyStream")
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// The status code.
    pub status: StatusCode,
    /// Header fields.
    pub headers: Headers,
    /// The response body (possibly empty).
    pub body: Vec<u8>,
    /// When set, the server ignores `body`, writes the headers, and hands
    /// the connection to this callback (see [`Response::streaming`]).
    pub stream: Option<BodyStream>,
}

impl Response {
    /// An empty response with the given status.
    pub fn empty(status: impl Into<StatusCode>) -> Self {
        Response {
            status: status.into(),
            headers: Headers::new(),
            body: Vec::new(),
            stream: None,
        }
    }

    /// A streaming response: after the status line and headers, the server
    /// calls `f` with the connection writer and a [`StreamControl`] shutdown
    /// signal, closing the connection when it returns. Used for
    /// `text/event-stream` endpoints.
    pub fn streaming(
        status: impl Into<StatusCode>,
        content_type: &str,
        f: impl Fn(&mut dyn io::Write, &StreamControl) -> io::Result<()> + Send + Sync + 'static,
    ) -> Self {
        let mut r = Response::empty(status);
        r.headers.set("Content-Type", content_type);
        r.stream = Some(BodyStream(Arc::new(f)));
        r
    }

    /// A JSON response.
    ///
    /// # Examples
    ///
    /// ```
    /// use mathcloud_http::Response;
    /// use mathcloud_json::json;
    ///
    /// let r = Response::json(200, &json!({"state": "DONE"}));
    /// assert_eq!(r.headers.get("content-type"), Some("application/json"));
    /// ```
    pub fn json(status: impl Into<StatusCode>, value: &Value) -> Self {
        let mut r = Response::empty(status);
        r.body = value.to_string().into_bytes();
        r.headers.set("Content-Type", "application/json");
        r
    }

    /// A plain-text response.
    pub fn text(status: impl Into<StatusCode>, text: &str) -> Self {
        let mut r = Response::empty(status);
        r.body = text.as_bytes().to_vec();
        r.headers.set("Content-Type", "text/plain; charset=utf-8");
        r
    }

    /// An HTML response (the container's auto-generated web UI).
    pub fn html(status: impl Into<StatusCode>, html: &str) -> Self {
        let mut r = Response::empty(status);
        r.body = html.as_bytes().to_vec();
        r.headers.set("Content-Type", "text/html; charset=utf-8");
        r
    }

    /// A binary response with an explicit content type (file downloads).
    pub fn bytes(status: impl Into<StatusCode>, content_type: &str, body: Vec<u8>) -> Self {
        let mut r = Response::empty(status);
        r.body = body;
        r.headers.set("Content-Type", content_type);
        r
    }

    /// The standard MathCloud error payload: `{"error": reason}`.
    pub fn error(status: impl Into<StatusCode>, reason: &str) -> Self {
        Response::json(status, &mathcloud_json::json!({ "error": reason }))
    }

    /// Sets a header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.set(name, value);
        self
    }

    /// The body as UTF-8 text (lossy).
    pub fn body_string(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns the JSON parse error for malformed bodies.
    pub fn body_json(&self) -> Result<Value, mathcloud_json::ParseError> {
        mathcloud_json::parse(&self.body_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathcloud_json::json;

    #[test]
    fn method_round_trip() {
        for m in ["GET", "POST", "DELETE", "BREW"] {
            assert_eq!(Method::from_token(m).as_str(), m);
        }
        assert_eq!(
            Method::from_token("get"),
            Method::Other("get".into()),
            "methods are case-sensitive"
        );
    }

    #[test]
    fn status_classification() {
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::OK.is_client_error());
        assert!(StatusCode::NOT_FOUND.is_client_error());
        assert!(StatusCode::INTERNAL_SERVER_ERROR.is_server_error());
        assert!(StatusCode::from(299).is_success());
        assert_eq!(StatusCode::from(777).reason(), "");
    }

    #[test]
    fn headers_are_case_insensitive_and_ordered() {
        let mut h = Headers::new();
        h.append("Accept", "application/json");
        h.append("accept", "text/html");
        assert_eq!(h.get("ACCEPT"), Some("application/json"));
        assert_eq!(h.get_all("Accept").len(), 2);
        h.set("accept", "*/*");
        assert_eq!(h.get_all("Accept"), vec!["*/*"]);
        h.remove("AcCePt");
        assert!(h.is_empty());
    }

    #[test]
    fn request_query_parsing() {
        let r = Request::new(Method::Get, "/search?q=matrix%20inversion&tag=cas&tag=grid");
        assert_eq!(r.path(), "/search");
        assert_eq!(r.query("q").as_deref(), Some("matrix inversion"));
        assert_eq!(r.query_pairs().len(), 3);
        let r = Request::new(Method::Get, "/plain");
        assert_eq!(r.path(), "/plain");
        assert!(r.query_raw().is_none());
    }

    #[test]
    fn json_bodies_round_trip() {
        let v = json!({"inputs": {"n": 250}});
        let req = Request::new(Method::Post, "/services/inverse").with_json(&v);
        assert_eq!(req.body_json().unwrap(), v);
        let resp = Response::json(201, &v);
        assert_eq!(resp.body_json().unwrap(), v);
        assert!(Response::text(200, "{not json").body_json().is_err());
    }

    #[test]
    fn error_payload_shape() {
        let r = Response::error(404, "no such job");
        assert_eq!(
            r.body_json().unwrap()["error"].as_str(),
            Some("no such job")
        );
        assert_eq!(r.status, StatusCode::NOT_FOUND);
    }
}
