//! Method + path-template request routing.

use std::collections::HashMap;
use std::sync::Arc;

use crate::message::{Method, Request, Response, StatusCode};
use crate::url::percent_decode;

/// Path parameters captured from a route template.
///
/// # Examples
///
/// ```
/// use mathcloud_http::{PathParams, Response, Router, Request, Method};
///
/// let mut router = Router::new();
/// router.get("/services/{name}/jobs/{id}", |_req, p: &PathParams| {
///     Response::text(200, &format!("{}:{}", p.get("name").unwrap(), p.get("id").unwrap()))
/// });
/// let req = Request::new(Method::Get, "/services/inverse/jobs/7");
/// assert_eq!(router.dispatch(&req).body_string(), "inverse:7");
/// ```
#[derive(Debug, Clone, Default)]
pub struct PathParams {
    params: HashMap<String, String>,
}

impl PathParams {
    /// Looks up a captured parameter by template name.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.params.get(name).map(String::as_str)
    }

    /// Number of captured parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Returns `true` when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }
}

/// A request handler.
pub type Handler = Arc<dyn Fn(&Request, &PathParams) -> Response + Send + Sync>;

/// A middleware: runs before routing; returning `Some` short-circuits with
/// that response (used by the security layer for authentication failures).
/// Middlewares may rewrite the request, e.g. to attach an authenticated
/// identity header.
pub type Middleware = Arc<dyn Fn(&mut Request) -> Option<Response> + Send + Sync>;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Literal(String),
    Param(String),
    /// `{*name}` — captures the remainder of the path, across `/`.
    Rest(String),
}

struct Route {
    method: Method,
    template: String,
    segments: Vec<Segment>,
    handler: Handler,
}

/// Routes requests to handlers by method and path template.
///
/// Templates are `/`-separated; a `{name}` segment captures one path segment
/// and `{*name}` captures the rest of the path. Captures are percent-decoded.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
    middlewares: Vec<Middleware>,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Self {
        Router::default()
    }

    /// Registers a handler for `method` + `template`.
    pub fn route<F>(&mut self, method: Method, template: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    {
        self.routes.push(Route {
            method,
            template: template.to_string(),
            segments: parse_template(template),
            handler: Arc::new(handler),
        });
        self
    }

    /// Registers a `GET` handler.
    pub fn get<F>(&mut self, template: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    {
        self.route(Method::Get, template, handler)
    }

    /// Registers a `POST` handler.
    pub fn post<F>(&mut self, template: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    {
        self.route(Method::Post, template, handler)
    }

    /// Registers a `DELETE` handler.
    pub fn delete<F>(&mut self, template: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    {
        self.route(Method::Delete, template, handler)
    }

    /// Registers a `PUT` handler.
    pub fn put<F>(&mut self, template: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    {
        self.route(Method::Put, template, handler)
    }

    /// Adds a middleware that runs before routing, in registration order.
    pub fn middleware<F>(&mut self, mw: F) -> &mut Self
    where
        F: Fn(&mut Request) -> Option<Response> + Send + Sync + 'static,
    {
        self.middlewares.push(Arc::new(mw));
        self
    }

    /// Dispatches a request: middlewares, then route matching.
    ///
    /// Produces `404` when no template matches and `405` when a template
    /// matches under a different method.
    pub fn dispatch(&self, req: &Request) -> Response {
        let mut req = req.clone();
        self.dispatch_mut(&mut req)
    }

    /// Dispatch variant that lets middlewares rewrite the request in place.
    pub fn dispatch_mut(&self, req: &mut Request) -> Response {
        self.dispatch_labeled(req).0
    }

    /// Like [`Router::dispatch_mut`], but also reports which route template
    /// handled the request — the low-cardinality label the server's per-route
    /// metrics are keyed by. Requests answered by a middleware report
    /// `"middleware"`; unmatched paths report `"unmatched"`; method
    /// mismatches report the template that matched the path.
    pub fn dispatch_labeled(&self, req: &mut Request) -> (Response, &str) {
        for mw in &self.middlewares {
            if let Some(resp) = mw(req) {
                return (resp, "middleware");
            }
        }
        let path = req.path().to_string();
        let mut path_match: Option<&Route> = None;
        for route in &self.routes {
            if let Some(params) = match_template(&route.segments, &path) {
                if route.method == req.method {
                    return ((route.handler)(req, &params), route.template.as_str());
                }
                if path_match.is_none() {
                    path_match = Some(route);
                }
            }
        }
        match path_match {
            Some(route) => (
                Response::error(StatusCode::METHOD_NOT_ALLOWED, "method not allowed"),
                route.template.as_str(),
            ),
            None => (
                Response::error(StatusCode::NOT_FOUND, "no such resource"),
                "unmatched",
            ),
        }
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("routes", &self.routes.len())
            .field("middlewares", &self.middlewares.len())
            .finish()
    }
}

fn parse_template(template: &str) -> Vec<Segment> {
    template
        .trim_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|seg| {
            if let Some(inner) = seg.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
                if let Some(rest) = inner.strip_prefix('*') {
                    Segment::Rest(rest.to_string())
                } else {
                    Segment::Param(inner.to_string())
                }
            } else {
                Segment::Literal(seg.to_string())
            }
        })
        .collect()
}

fn match_template(segments: &[Segment], path: &str) -> Option<PathParams> {
    let parts: Vec<&str> = path
        .trim_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    let mut params = PathParams::default();
    let mut i = 0;
    for (si, seg) in segments.iter().enumerate() {
        match seg {
            Segment::Rest(name) => {
                let rest: Vec<String> = parts[i..].iter().map(|p| percent_decode(p)).collect();
                params.params.insert(name.clone(), rest.join("/"));
                return Some(params);
            }
            Segment::Literal(lit) => {
                if parts.get(i) != Some(&lit.as_str()) {
                    return None;
                }
                i += 1;
            }
            Segment::Param(name) => {
                let part = parts.get(i)?;
                params.params.insert(name.clone(), percent_decode(part));
                i += 1;
            }
        }
        let _ = si;
    }
    if i == parts.len() {
        Some(params)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(name: &str) -> impl Fn(&Request, &PathParams) -> Response {
        let name = name.to_string();
        move |_req, _p| Response::text(200, &name)
    }

    #[test]
    fn literal_routes_match_exactly() {
        let mut r = Router::new();
        r.get("/services", ok("list"));
        r.get("/services/all", ok("all"));
        assert_eq!(
            r.dispatch(&Request::new(Method::Get, "/services"))
                .body_string(),
            "list"
        );
        assert_eq!(
            r.dispatch(&Request::new(Method::Get, "/services/"))
                .body_string(),
            "list"
        );
        assert_eq!(
            r.dispatch(&Request::new(Method::Get, "/services/all"))
                .body_string(),
            "all"
        );
        assert_eq!(
            r.dispatch(&Request::new(Method::Get, "/nope"))
                .status
                .as_u16(),
            404
        );
        assert_eq!(
            r.dispatch(&Request::new(Method::Get, "/services/all/x"))
                .status
                .as_u16(),
            404
        );
    }

    #[test]
    fn params_capture_and_decode() {
        let mut r = Router::new();
        r.get("/s/{name}/jobs/{id}", |_rq, p: &PathParams| {
            Response::text(
                200,
                &format!("{}|{}", p.get("name").unwrap(), p.get("id").unwrap()),
            )
        });
        let resp = r.dispatch(&Request::new(Method::Get, "/s/matrix%20inv/jobs/42"));
        assert_eq!(resp.body_string(), "matrix inv|42");
    }

    #[test]
    fn rest_segments_capture_slashes() {
        let mut r = Router::new();
        r.get("/files/{*path}", |_rq, p: &PathParams| {
            Response::text(200, p.get("path").unwrap())
        });
        let resp = r.dispatch(&Request::new(Method::Get, "/files/a/b/c.txt"));
        assert_eq!(resp.body_string(), "a/b/c.txt");
    }

    #[test]
    fn wrong_method_is_405_missing_is_404() {
        let mut r = Router::new();
        r.post("/jobs", ok("submit"));
        assert_eq!(
            r.dispatch(&Request::new(Method::Get, "/jobs"))
                .status
                .as_u16(),
            405
        );
        assert_eq!(
            r.dispatch(&Request::new(Method::Get, "/other"))
                .status
                .as_u16(),
            404
        );
    }

    #[test]
    fn first_matching_route_wins() {
        let mut r = Router::new();
        r.get("/a/{x}", ok("param"));
        r.get("/a/literal", ok("literal"));
        assert_eq!(
            r.dispatch(&Request::new(Method::Get, "/a/literal"))
                .body_string(),
            "param"
        );
    }

    #[test]
    fn middleware_short_circuits_and_rewrites() {
        let mut r = Router::new();
        r.middleware(|req: &mut Request| {
            if req.headers.get("authorization").is_none() {
                return Some(Response::error(401, "credentials required"));
            }
            req.headers.set("x-user", "alice");
            None
        });
        r.get("/private", |req: &Request, _p: &PathParams| {
            Response::text(200, req.headers.get("x-user").unwrap())
        });
        assert_eq!(
            r.dispatch(&Request::new(Method::Get, "/private"))
                .status
                .as_u16(),
            401
        );
        let authed = Request::new(Method::Get, "/private").with_header("Authorization", "tok");
        assert_eq!(r.dispatch(&authed).body_string(), "alice");
    }

    #[test]
    fn query_strings_do_not_affect_matching() {
        let mut r = Router::new();
        r.get("/search", ok("search"));
        assert_eq!(
            r.dispatch(&Request::new(Method::Get, "/search?q=x"))
                .body_string(),
            "search"
        );
    }
}
