//! Property-based tests for the HTTP substrate: wire round-trips, URL and
//! query codecs, and router dispatch totality.

use std::io::BufReader;

use mathcloud_http::{
    decode_query, encode_query, percent_decode, percent_encode, Method, Request, Response, Router,
    Url,
};
use mathcloud_http::wire;
use proptest::prelude::*;

fn arb_header_value() -> impl Strategy<Value = String> {
    // Header values: printable ASCII without CR/LF.
    "[ -~&&[^\r\n]]{0,24}".prop_map(|s| s.trim().to_string())
}

proptest! {
    /// Requests round-trip through the wire encoding byte-for-byte.
    #[test]
    fn request_wire_round_trip(
        target in "/[a-z0-9/]{0,20}",
        body in prop::collection::vec(any::<u8>(), 0..512),
        names in prop::collection::vec("[A-Za-z][A-Za-z0-9-]{0,10}", 0..4),
        values in prop::collection::vec(arb_header_value(), 0..4),
    ) {
        let mut req = Request::new(Method::Post, &target);
        req.body = body.clone();
        for (n, v) in names.iter().zip(&values) {
            if n.eq_ignore_ascii_case("content-length") || n.eq_ignore_ascii_case("host") {
                continue;
            }
            req.headers.set(n, v);
        }
        let mut bytes = Vec::new();
        wire::write_request(&mut bytes, &req, "h:1").unwrap();
        let parsed = wire::read_request(&mut BufReader::new(&bytes[..])).unwrap().unwrap();
        prop_assert_eq!(parsed.method, Method::Post);
        prop_assert_eq!(parsed.target, target);
        prop_assert_eq!(parsed.body, body);
        for (n, v) in names.iter().zip(&values) {
            if n.eq_ignore_ascii_case("content-length") || n.eq_ignore_ascii_case("host") {
                continue;
            }
            prop_assert_eq!(parsed.headers.get(n), Some(v.as_str()));
        }
    }

    /// Responses round-trip likewise, for every status code.
    #[test]
    fn response_wire_round_trip(
        status in 100u16..600,
        body in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut resp = Response::empty(status);
        resp.body = body.clone();
        let mut bytes = Vec::new();
        wire::write_response(&mut bytes, &resp).unwrap();
        let parsed = wire::read_response(&mut BufReader::new(&bytes[..])).unwrap();
        prop_assert_eq!(parsed.status.as_u16(), status);
        prop_assert_eq!(parsed.body, body);
    }

    /// The request parser never panics on arbitrary bytes.
    #[test]
    fn request_parser_is_panic_free(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::read_request(&mut BufReader::new(&bytes[..]));
    }

    /// Percent-encoding round-trips arbitrary unicode.
    #[test]
    fn percent_round_trip(s in "\\PC{0,40}") {
        prop_assert_eq!(percent_decode(&percent_encode(&s)), s);
    }

    /// Query strings round-trip arbitrary key/value pairs.
    #[test]
    fn query_round_trip(pairs in prop::collection::vec(("\\PC{1,10}", "\\PC{0,10}"), 0..5)) {
        let pairs: Vec<(String, String)> = pairs;
        let encoded = encode_query(&pairs);
        prop_assert_eq!(decode_query(&encoded), pairs);
    }

    /// URLs printed from parsed form re-parse identically.
    #[test]
    fn url_round_trip(
        host in "[a-z][a-z0-9.-]{0,15}",
        port in 1u16..65535,
        path in "(/[a-z0-9]{1,6}){0,4}",
    ) {
        let text = format!("http://{host}:{port}{}", if path.is_empty() { "/".to_string() } else { path });
        let url: Url = text.parse().unwrap();
        prop_assert_eq!(url.to_string().parse::<Url>().unwrap(), url);
    }

    /// Router dispatch is total: every request gets a response (never a
    /// panic), and unmatched paths are 404.
    #[test]
    fn router_dispatch_is_total(target in "\\PC{0,40}") {
        let mut router = Router::new();
        router.get("/known/{x}", |_r, _p| Response::empty(200));
        let target = if target.starts_with('/') { target } else { format!("/{target}") };
        let resp = router.dispatch(&Request::new(Method::Get, &target));
        prop_assert!(resp.status.as_u16() == 200 || resp.status.as_u16() == 404);
    }
}
