//! Randomized property tests for the HTTP substrate: wire round-trips, URL
//! and query codecs, and router dispatch totality. Driven by the
//! workspace's deterministic PRNG (offline, reproducible).

use std::io::BufReader;

use mathcloud_http::wire;
use mathcloud_http::{
    decode_query, encode_query, percent_decode, percent_encode, Method, Request, Response, Router,
    Url,
};
use mathcloud_telemetry::XorShift64;

const CASES: usize = 200;

/// Header values: printable ASCII without CR/LF, with no surrounding
/// whitespace (the wire codec trims optional whitespace around values).
fn arb_header_value(rng: &mut XorShift64) -> String {
    let len = rng.index(25);
    let s: String = (0..len)
        .map(|_| (b' ' + rng.index(95) as u8) as char)
        .collect();
    s.trim().to_string()
}

fn arb_header_name(rng: &mut XorShift64) -> String {
    const FIRST: &[char] = &['A', 'B', 'X', 'a', 'm', 'z'];
    const REST: &[char] = &['a', 'b', 'z', 'A', 'Z', '0', '9', '-'];
    let len = rng.index(11);
    let mut name = rng.pick(FIRST).to_string();
    for _ in 0..len {
        name.push(*rng.pick(REST));
    }
    name
}

fn arb_bytes(rng: &mut XorShift64, max_len: usize) -> Vec<u8> {
    let len = rng.index(max_len + 1);
    (0..len).map(|_| rng.next_u32() as u8).collect()
}

fn arb_target(rng: &mut XorShift64) -> String {
    const POOL: &[char] = &['a', 'z', '0', '9', '/'];
    let len = rng.index(21);
    format!("/{}", rng.string_from(POOL, len))
}

/// Requests round-trip through the wire encoding byte-for-byte.
#[test]
fn request_wire_round_trip() {
    let mut rng = XorShift64::new(0x717E);
    for case in 0..CASES {
        let target = arb_target(&mut rng);
        let body = arb_bytes(&mut rng, 512);
        let n_headers = rng.index(4);
        // Dedupe names case-insensitively: set() overwrites on collision.
        let mut seen = std::collections::HashSet::new();
        let headers: Vec<(String, String)> = (0..n_headers)
            .filter_map(|_| {
                let name = arb_header_name(&mut rng);
                let value = arb_header_value(&mut rng);
                seen.insert(name.to_ascii_lowercase())
                    .then_some((name, value))
            })
            .collect();
        let mut req = Request::new(Method::Post, &target);
        req.body = body.clone();
        for (n, v) in &headers {
            if n.eq_ignore_ascii_case("content-length") || n.eq_ignore_ascii_case("host") {
                continue;
            }
            req.headers.set(n, v);
        }
        let mut bytes = Vec::new();
        wire::write_request(&mut bytes, &req, "h:1").unwrap();
        let parsed = wire::read_request(&mut BufReader::new(&bytes[..]))
            .unwrap()
            .unwrap();
        assert_eq!(parsed.method, Method::Post, "case {case}");
        assert_eq!(parsed.target, target, "case {case}");
        assert_eq!(parsed.body, body, "case {case}");
        for (n, v) in &headers {
            if n.eq_ignore_ascii_case("content-length") || n.eq_ignore_ascii_case("host") {
                continue;
            }
            assert_eq!(parsed.headers.get(n), Some(v.as_str()), "case {case}");
        }
    }
}

/// Responses round-trip likewise, for every status code.
#[test]
fn response_wire_round_trip() {
    let mut rng = XorShift64::new(0x7357);
    for case in 0..CASES {
        let status = rng.range_i64(100, 599) as u16;
        let body = arb_bytes(&mut rng, 512);
        let mut resp = Response::empty(status);
        resp.body = body.clone();
        let mut bytes = Vec::new();
        wire::write_response(&mut bytes, &resp).unwrap();
        let parsed = wire::read_response(&mut BufReader::new(&bytes[..])).unwrap();
        assert_eq!(parsed.status.as_u16(), status, "case {case}");
        assert_eq!(parsed.body, body, "case {case}");
    }
}

/// The request parser never panics on arbitrary bytes.
#[test]
fn request_parser_is_panic_free() {
    let mut rng = XorShift64::new(0xFA11);
    for _ in 0..CASES {
        let bytes = arb_bytes(&mut rng, 256);
        let _ = wire::read_request(&mut BufReader::new(&bytes[..]));
    }
}

/// Percent-encoding round-trips arbitrary unicode.
#[test]
fn percent_round_trip() {
    let mut rng = XorShift64::new(0xE5C);
    for case in 0..CASES {
        let s = rng.unicode_string(40);
        assert_eq!(percent_decode(&percent_encode(&s)), s, "case {case}");
    }
}

/// Query strings round-trip arbitrary key/value pairs.
#[test]
fn query_round_trip() {
    let mut rng = XorShift64::new(0x9E4);
    for case in 0..CASES {
        let n = rng.index(5);
        let pairs: Vec<(String, String)> = (0..n)
            .map(|_| {
                let key = loop {
                    let k = rng.unicode_string(10);
                    if !k.is_empty() {
                        break k;
                    }
                };
                let value = rng.unicode_string(10);
                (key, value)
            })
            .collect();
        let encoded = encode_query(&pairs);
        assert_eq!(decode_query(&encoded), pairs, "case {case}: {encoded}");
    }
}

/// URLs printed from parsed form re-parse identically.
#[test]
fn url_round_trip() {
    const HOST_FIRST: &[char] = &['a', 'h', 'z'];
    const HOST_REST: &[char] = &['a', 'z', '0', '9', '.', '-'];
    const SEG: &[char] = &['a', 'z', '0', '9'];
    let mut rng = XorShift64::new(0x5EA);
    for case in 0..CASES {
        let mut host = rng.pick(HOST_FIRST).to_string();
        let host_len = rng.index(16);
        for _ in 0..host_len {
            host.push(*rng.pick(HOST_REST));
        }
        let port = 1 + rng.index(65534) as u16;
        let mut path = String::new();
        for _ in 0..rng.index(5) {
            let len = 1 + rng.index(6);
            path.push('/');
            path.push_str(&rng.string_from(SEG, len));
        }
        if path.is_empty() {
            path.push('/');
        }
        let text = format!("http://{host}:{port}{path}");
        let url: Url = text.parse().unwrap();
        assert_eq!(
            url.to_string().parse::<Url>().unwrap(),
            url,
            "case {case}: {text}"
        );
    }
}

/// Router dispatch is total: every request gets a response (never a panic),
/// and unmatched paths are 404.
#[test]
fn router_dispatch_is_total() {
    let mut rng = XorShift64::new(0x404);
    let mut router = Router::new();
    router.get("/known/{x}", |_r, _p| Response::empty(200));
    for case in 0..CASES {
        let target = {
            let t = rng.unicode_string(40);
            if t.starts_with('/') {
                t
            } else {
                format!("/{t}")
            }
        };
        let resp = router.dispatch(&Request::new(Method::Get, &target));
        let status = resp.status.as_u16();
        assert!(
            status == 200 || status == 404,
            "case {case}: {status} for {target:?}"
        );
    }
}
