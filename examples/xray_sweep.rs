//! A memoized parameter sweep over the paper's X-ray analysis services.
//!
//! A real analysis campaign is not one fit but a grid of them — and the
//! expensive Debye scattering curves repeat across grid points, as do whole
//! re-runs of yesterday's campaign. With result memoization enabled on the
//! container, repeated `(service, inputs)` submissions are answered from the
//! content-addressed result cache: the response carries `X-MC-Memo-Hit` and
//! the client surfaces it as `JobHandle::was_memo_hit`.
//!
//! Run with: `cargo run --release -p mathcloud-examples --bin xray_sweep`

use std::time::{Duration, Instant};

use mathcloud_bench::xrayservices::deploy_xray_services;
use mathcloud_client::ServiceClient;
use mathcloud_everest::Everest;
use mathcloud_json::{json, Value};

fn main() {
    let everest = Everest::with_handlers("xray-sweep", 4);
    deploy_xray_services(&everest);
    // Opt in: the X-ray kernels are pure functions of their inputs, so a
    // completed job IS the answer for every identical future submission.
    everest.set_result_memoization(true);
    let server = mathcloud_everest::serve(everest, "127.0.0.1:0", None).expect("bind");
    let base = server.base_url();
    println!("memoizing x-ray container online at {base}");

    let scatter = ServiceClient::connect(&format!("{base}/services/xray-scatter")).expect("url");
    let timeout = Duration::from_secs(60);

    // The sweep: 8 grid points cycling over 3 candidate structures. Only
    // the first occurrence of each structure computes a Debye sum; the
    // later grid points hit the cache, whatever their wire-level spelling.
    let radii = [1.2, 1.5, 1.8];
    println!(
        "\n{:>5} {:>26} {:>9} {:>9}",
        "point", "structure", "wall ms", "answer"
    );
    for g in 0..8usize {
        let r = radii[g % radii.len()];
        // Alternate spellings of the same payload: key order and number
        // form differ, the canonical memo key does not.
        let body = if g % 2 == 0 {
            json!({"structure": {"kind": "sphere", "radius": r}, "q_points": 64})
        } else {
            json!({"q_points": 64.0, "structure": {"radius": r, "kind": "sphere"}})
        };
        let t0 = Instant::now();
        let handle = scatter.submit(&body).expect("submit");
        let hit = handle.was_memo_hit();
        let rep = handle.wait(timeout).expect("wait");
        let curve = rep
            .outputs
            .expect("outputs")
            .get("curve")
            .and_then(Value::as_array)
            .map(|a| a.len())
            .unwrap_or(0);
        println!(
            "{:>5} {:>26} {:>9.1} {:>9}",
            g,
            format!("sphere r={r}"),
            t0.elapsed().as_secs_f64() * 1e3,
            if hit {
                "memo hit".to_string()
            } else {
                format!("{curve}-pt curve")
            }
        );
    }

    println!("\nre-running the identical campaign (every submission hits):");
    let t0 = Instant::now();
    let mut hits = 0;
    for g in 0..8usize {
        let r = radii[g % radii.len()];
        let handle = scatter
            .submit(&json!({"structure": {"kind": "sphere", "radius": r}, "q_points": 64}))
            .expect("submit");
        if handle.was_memo_hit() {
            hits += 1;
        }
        handle.wait(timeout).expect("wait");
    }
    println!(
        "  8 grid points in {:.1} ms, {hits}/8 memo hits",
        t0.elapsed().as_secs_f64() * 1e3
    );
    server.shutdown();
}
