//! Quickstart: publish an application as a computational web service and
//! call it through the unified REST API.
//!
//! Demonstrates the paper's core loop in under a minute:
//! 1. start an Everest container,
//! 2. deploy a service from *pure configuration* (the Command adapter — no
//!    code written),
//! 3. deploy a native service (the Java-adapter analogue),
//! 4. introspect, submit, poll and fetch results as any HTTP client would.
//!
//! Run with: `cargo run -p mathcloud-examples --bin quickstart`

use std::time::Duration;

use mathcloud_client::ServiceClient;
use mathcloud_core::{Parameter, ServiceDescription};
use mathcloud_everest::adapter::NativeAdapter;
use mathcloud_everest::{load_config, AdapterRegistry, Everest};
use mathcloud_json::{json, parse, Schema, Value};

fn main() {
    // 1. A container.
    let everest = Everest::new("quickstart");

    // 2. Config-only deployment: expose `wc -w` as a word-count service.
    //    "a user doesn't need to develop a service from scratch … In many
    //    cases service development reduces to writing a service
    //    configuration file" (§4).
    let config = parse(
        r#"{
            "services": [{
                "name": "word-count",
                "description": "Counts words in a text using wc(1)",
                "inputs":  { "text": {"type": "string"} },
                "outputs": { "count": {"type": "string"} },
                "adapter": {
                    "type": "command",
                    "program": "/usr/bin/wc",
                    "args": ["-w"],
                    "stdin": "text",
                    "stdout": "count"
                },
                "tags": ["text", "unix"]
            }]
        }"#,
    )
    .expect("config parses");
    load_config(&everest, &config, &AdapterRegistry::new()).expect("config deploys");

    // 3. A native (in-process) service.
    everest.deploy(
        ServiceDescription::new("fibonacci", "n-th Fibonacci number, exactly")
            .input(Parameter::new(
                "n",
                Schema::integer().minimum(0.0).maximum(10_000.0),
            ))
            .output(Parameter::new("value", Schema::string()))
            .tag("math"),
        NativeAdapter::from_fn(|inputs, _| {
            let n = inputs.get("n").and_then(Value::as_i64).unwrap_or(0);
            let (mut a, mut b) = (
                mathcloud_exact::BigInt::zero(),
                mathcloud_exact::BigInt::one(),
            );
            for _ in 0..n {
                let next = &a + &b;
                a = b;
                b = next;
            }
            Ok([("value".to_string(), Value::from(a.to_string()))]
                .into_iter()
                .collect())
        }),
    );

    // 4. Serve it over HTTP and interact like any client.
    let server = mathcloud_everest::serve(everest, "127.0.0.1:0", None).expect("bind");
    let base = server.base_url();
    println!("container listening at {base}");
    println!("web UI available at {base}/ui\n");

    let wc = ServiceClient::connect(&format!("{base}/services/word-count")).expect("url");
    println!(
        "-- word-count description --\n{}\n",
        wc.describe()
            .expect("describe")
            .to_value()
            .to_pretty_string()
    );

    let rep = wc
        .call(
            &json!({"text": "services made from pure configuration"}),
            Duration::from_secs(10),
        )
        .expect("word-count job");
    println!(
        "word-count(\"services made from pure configuration\") = {}",
        rep.outputs.expect("outputs").get("count").expect("count")
    );

    let fib = ServiceClient::connect(&format!("{base}/services/fibonacci")).expect("url");
    let rep = fib
        .call(&json!({"n": 200}), Duration::from_secs(10))
        .expect("fibonacci job");
    println!(
        "fibonacci(200) = {}",
        rep.outputs.expect("outputs").get("value").expect("value")
    );

    // Validation errors travel as structured HTTP 400s.
    let err = fib
        .submit(&json!({"n": (-1)}))
        .expect_err("negative n is rejected");
    println!("fibonacci(-1) -> {err}");
}
