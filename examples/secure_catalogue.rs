//! Service catalogue + security mechanism walkthrough (§3.2 and §3.4).
//!
//! Starts two containers (one open, one certificate-protected), publishes
//! their services into a catalogue, searches with snippets, exercises the
//! availability monitor, and demonstrates the full authentication /
//! authorization / delegation matrix of Fig 3.
//!
//! Run with: `cargo run -p mathcloud-examples --bin secure_catalogue`

use std::time::Duration;

use mathcloud_catalogue::Catalogue;
use mathcloud_core::{Parameter, ServiceDescription};
use mathcloud_everest::adapter::NativeAdapter;
use mathcloud_everest::Everest;
use mathcloud_json::value::Object;
use mathcloud_json::{json, Schema};
use mathcloud_security::{
    middleware, AccessPolicy, AuthConfig, CertificateAuthority, Identity, OpenIdProvider,
};

fn echo_service(name: &str, description: &str) -> (ServiceDescription, NativeAdapter) {
    (
        ServiceDescription::new(name, description)
            .input(Parameter::new("message", Schema::string()))
            .output(Parameter::new("echo", Schema::string())),
        NativeAdapter::from_fn(|inputs: &Object, _| {
            let m = inputs.get("message").and_then(|v| v.as_str()).unwrap_or("");
            Ok([("echo".to_string(), json!(m))].into_iter().collect())
        }),
    )
}

fn main() {
    // --- Two containers: open and secured --------------------------------
    let open = Everest::new("open-node");
    let (d, a) = echo_service(
        "echo",
        "Echoes a message; exact matrix inversion not included",
    );
    open.deploy(d, a);
    let (d, a) = echo_service(
        "matrix-echo",
        "Pretends to do exact matrix inversion via Schur complement",
    );
    open.deploy(d, a);
    let open_server = mathcloud_everest::serve(open, "127.0.0.1:0", None).expect("bind");

    let ca = CertificateAuthority::new("mathcloud-ca");
    let provider = OpenIdProvider::new("loginza-sim");
    let secured = Everest::new("secure-node");
    let mut policy = AccessPolicy::new();
    policy.allow(Identity::openid("https://id/alice"));
    policy.trust_proxy("CN=workflow-service");
    let (d, a) = echo_service("private-echo", "Echo for authorized users only");
    secured.deploy_with_policy(d, a, policy);
    let secured_server = mathcloud_everest::serve(
        secured,
        "127.0.0.1:0",
        Some(AuthConfig::new(ca.clone()).with_provider(provider.clone())),
    )
    .expect("bind");

    // --- Catalogue: publish, search, monitor ------------------------------
    println!("== catalogue ==");
    let catalogue = Catalogue::new();
    let open_base = open_server.base_url();
    catalogue
        .publish(&format!("{open_base}/services/echo"), &["demo"])
        .expect("publish echo");
    catalogue
        .publish(
            &format!("{open_base}/services/matrix-echo"),
            &["demo", "linear-algebra"],
        )
        .expect("publish matrix-echo");

    for result in catalogue.search("matrix inversion", None) {
        println!(
            "hit: {} (score {:.3}, available: {})\n     {}",
            result.entry.description.name(),
            result.score,
            result.entry.available,
            result.snippet
        );
    }
    let (up, down) = catalogue.ping_all();
    println!("availability sweep: {up} up, {down} down");

    // --- Security matrix ---------------------------------------------------
    println!("\n== security (Fig 3) ==");
    let url = format!("{}/services/private-echo", secured_server.base_url());
    let body = json!({"message": "hi"});
    let http = mathcloud_http::Client::new();

    // Anonymous: policy rejects (403).
    let resp = http.post_json(&url, &body).expect("send");
    println!("anonymous            -> {}", resp.status);

    // Alice via OpenID: allowed.
    let token = provider.login("https://id/alice", 600);
    let resp = http
        .send(
            &url.parse().expect("url"),
            middleware::with_openid(
                mathcloud_http::Request::new(
                    mathcloud_http::Method::Post,
                    "/services/private-echo",
                )
                .with_json(&body),
                &token,
            ),
        )
        .expect("send");
    println!("alice (openid)       -> {}", resp.status);

    // Bob with a valid certificate but not on the allow list: 403.
    let bob_cert = ca.issue("CN=bob", 600);
    let resp = http
        .send(
            &url.parse().expect("url"),
            middleware::with_certificate(
                mathcloud_http::Request::new(
                    mathcloud_http::Method::Post,
                    "/services/private-echo",
                )
                .with_json(&body),
                &bob_cert,
            ),
        )
        .expect("send");
    println!("bob (cert, unlisted) -> {}", resp.status);

    // Forged certificate: 401 from the middleware.
    let mut forged = ca.issue("CN=bob", 600);
    forged.subject = "CN=alice-totally".into();
    let resp = http
        .send(
            &url.parse().expect("url"),
            middleware::with_certificate(
                mathcloud_http::Request::new(
                    mathcloud_http::Method::Post,
                    "/services/private-echo",
                )
                .with_json(&body),
                &forged,
            ),
        )
        .expect("send");
    println!("forged certificate   -> {}", resp.status);

    // The workflow service acting for alice (trusted proxy): allowed.
    let wms_cert = ca.issue("CN=workflow-service", 600);
    let resp = http
        .send(
            &url.parse().expect("url"),
            middleware::with_delegation(
                mathcloud_http::Request::new(
                    mathcloud_http::Method::Post,
                    "/services/private-echo",
                )
                .with_json(&body),
                &wms_cert,
                &Identity::openid("https://id/alice"),
            ),
        )
        .expect("send");
    println!("wms on behalf of alice -> {}", resp.status);

    // Shut a container down and watch the monitor catch it.
    println!("\n== availability monitoring ==");
    drop(open_server);
    std::thread::sleep(Duration::from_millis(100));
    let (up, down) = catalogue.ping_all();
    println!("after shutdown: {up} up, {down} down");
    for e in catalogue.entries() {
        println!("  {} available={}", e.description.name(), e.available);
    }
}
