//! serve_demo: a long-running container to poke at with curl or `mcli`.
//!
//! Deploys two native services and keeps serving until killed, so the REST
//! API and the observability endpoints (`/metrics`, `/health`, the web UI)
//! can be explored interactively:
//!
//! ```text
//! cargo run -p mathcloud-examples --bin serve_demo [addr]
//! curl http://127.0.0.1:<port>/metrics
//! curl http://127.0.0.1:<port>/health
//! mcli call http://127.0.0.1:<port>/services/double n=21
//! ```
//!
//! `addr` defaults to `127.0.0.1:0` (a free port, printed on startup).

use mathcloud_core::{Parameter, ServiceDescription};
use mathcloud_everest::adapter::NativeAdapter;
use mathcloud_everest::Everest;
use mathcloud_json::{json, Schema, Value};

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:0".to_string());

    let everest = Everest::with_handlers("serve-demo", 4);
    // Both demo services are pure, so repeat POSTs with the same inputs
    // answer 200 + `X-MC-Memo-Hit: true` from the result cache.
    everest.set_result_memoization(true);
    everest.deploy(
        ServiceDescription::new("double", "doubles an integer")
            .input(Parameter::new("n", Schema::integer()))
            .output(Parameter::new("d", Schema::integer()))
            .tag("math"),
        NativeAdapter::from_fn(|inputs, _| {
            let n = inputs.get("n").and_then(Value::as_i64).unwrap_or(0);
            Ok([("d".to_string(), json!(n * 2))].into_iter().collect())
        }),
    );
    everest.deploy(
        ServiceDescription::new("slow-echo", "echoes its input after ~200ms")
            .input(Parameter::new("text", Schema::string()))
            .output(Parameter::new("text", Schema::string()))
            .tag("demo"),
        NativeAdapter::from_fn(|inputs, _| {
            std::thread::sleep(std::time::Duration::from_millis(200));
            let text = inputs.get("text").cloned().unwrap_or(Value::Null);
            Ok([("text".to_string(), text)].into_iter().collect())
        }),
    );

    let server = mathcloud_everest::serve(everest, &addr, None).expect("bind");
    let base = server.base_url();
    println!("container listening at {base}");
    println!("  services: {base}/services");
    println!("  metrics:  {base}/metrics");
    println!("  health:   {base}/health");
    println!("  web UI:   {base}/ui");
    println!("press Ctrl-C to stop");
    loop {
        std::thread::park();
    }
}
