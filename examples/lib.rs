//! Example package; see the binary targets in this directory.
