//! The paper's third application: distributed optimization modeling (§4,
//! refs [12-13]) — an AMPL model translated to an exact LP, and a
//! Dantzig–Wolfe decomposition whose pricing subproblems are dispatched to
//! a pool of MathCloud solver services in parallel.
//!
//! Run with: `cargo run --release -p mathcloud-examples --bin dantzig_wolfe [commodities] [services]`

use std::time::{Duration, Instant};

use mathcloud_bench::dw::{spawn_solver_pool, RemoteSolverPool, SolverLatency};
use mathcloud_opt::transport::MultiCommodityProblem;
use mathcloud_opt::{solve_dantzig_wolfe, DwOptions, Model};

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6);
    let pool: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);

    // --- Part 1: the AMPL translator as a building block -----------------
    println!("== AMPL-subset translator ==");
    let src = "
        set I; set J;
        param supply {I}; param demand {J}; param cost {I, J};
        var x {I, J} >= 0;
        minimize total: sum {i in I, j in J} cost[i,j] * x[i,j];
        subject to sup {i in I}: sum {j in J} x[i,j] <= supply[i];
        subject to dem {j in J}: sum {i in I} x[i,j] >= demand[j];
        data;
        set I := novosibirsk moscow;
        set J := dubna protvino;
        param supply := novosibirsk 70 moscow 50;
        param demand := dubna 60 protvino 45;
        param cost := novosibirsk dubna 4   novosibirsk protvino 6
                      moscow      dubna 3   moscow      protvino 2;
        end;
    ";
    let lp = Model::parse(src)
        .expect("model parses")
        .instantiate()
        .expect("data binds");
    println!(
        "instantiated LP: {} vars, {} constraints",
        lp.num_vars(),
        lp.num_constraints()
    );
    let sol = mathcloud_opt::solve(&lp).optimal().expect("feasible");
    println!("optimal shipping cost: {}", sol.objective);
    for (name, value) in lp.names().iter().zip(&sol.values) {
        if !value.is_zero() {
            println!("  {name} = {value}");
        }
    }

    // --- Part 2: Dantzig–Wolfe over a service pool ------------------------
    println!("\n== Dantzig-Wolfe with {k} commodities over {pool} solver services ==");
    let problem = MultiCommodityProblem::random(k, 2, 3, 2024);
    let direct = mathcloud_opt::solve(&problem.to_lp())
        .optimal()
        .expect("instance feasible");
    println!(
        "monolithic LP: {} vars — optimum {}",
        problem.to_lp().num_vars(),
        direct.objective
    );

    let servers = spawn_solver_pool(pool, SolverLatency(Duration::from_millis(15)));
    let bases: Vec<String> = servers.iter().map(|s| s.base_url()).collect();
    println!("solver services:");
    for b in &bases {
        println!("  {b}/services/lp-transport");
    }
    let solver = RemoteSolverPool::new(problem.clone(), &bases);

    let t0 = Instant::now();
    let dw = solve_dantzig_wolfe(&problem, &solver, &DwOptions::default()).expect("converges");
    let took = t0.elapsed();

    assert_eq!(dw.objective, direct.objective, "decomposition is exact");
    println!(
        "\nDW optimum {} in {:.3}s — {} iterations, {} columns, {} remote subproblem calls",
        dw.objective,
        took.as_secs_f64(),
        dw.stats.iterations,
        dw.stats.columns,
        dw.stats.subproblems_solved
    );
    println!("matches the monolithic optimum exactly (rational arithmetic end-to-end)");
}
