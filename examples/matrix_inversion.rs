//! The paper's first application: error-free inversion of an
//! ill-conditioned Hilbert matrix, distributed over four matrix services
//! with a Schur-complement workflow (§4, Table 2).
//!
//! Run with: `cargo run --release -p mathcloud-examples --bin matrix_inversion [N]`

use std::time::Instant;

use mathcloud_bench::matrix::{schur_workflow, spawn_matrix_farm};
use mathcloud_exact::{hilbert, Matrix};
use mathcloud_json::value::Object;
use mathcloud_json::Value;
use mathcloud_workflow::{validate, BlockRun, Engine, HttpDescriptions};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);

    println!("inverting the {n}x{n} Hilbert matrix (condition number grows like (1+√2)^(4n))");
    let h = hilbert(n);

    // Serial baseline: one exact in-process inversion.
    let t0 = Instant::now();
    let serial = h.inverse().expect("hilbert matrices are invertible");
    let serial_time = t0.elapsed();
    println!(
        "serial inversion: {:.3}s (largest entry: {} bits)",
        serial_time.as_secs_f64(),
        serial.max_entry_bits()
    );

    // Distributed: 4 containers, Schur workflow.
    let servers = spawn_matrix_farm(4, 4);
    let bases: Vec<String> = servers.iter().map(|s| s.base_url()).collect();
    println!("\nstarted 4 matrix-service containers:");
    for b in &bases {
        println!("  {b}");
    }

    let workflow = schur_workflow(&bases);
    println!("\nworkflow blocks: {}", workflow.blocks.len());
    let validated = validate(&workflow, &HttpDescriptions::new()).expect("workflow validates");
    let engine = Engine::new(validated);

    let inputs: Object = [
        ("matrix".to_string(), Value::from(h.to_text())),
        ("k".to_string(), Value::from(n / 2)),
    ]
    .into_iter()
    .collect();

    let t0 = Instant::now();
    let handle = engine.start(&inputs).expect("inputs present");
    // Live block states: what the graphical editor renders as colors.
    loop {
        let states = handle.block_states();
        let running: Vec<&str> = states
            .iter()
            .filter(|(_, s)| **s == BlockRun::Running)
            .map(|(b, _)| b.as_str())
            .collect();
        let done = states.values().filter(|s| **s == BlockRun::Done).count();
        if done == states.len() || states.values().any(|s| *s == BlockRun::Failed) {
            break;
        }
        if !running.is_empty() {
            println!("  running: {}", running.join(", "));
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    let outputs = handle.wait().expect("distributed inversion succeeds");
    let parallel_time = t0.elapsed();

    let distributed = Matrix::from_text(
        outputs
            .get("inverse")
            .and_then(Value::as_str)
            .expect("inverse output"),
    )
    .expect("well-formed matrix");
    assert_eq!(
        distributed, serial,
        "error-free: results are *identical*, not just close"
    );

    println!(
        "\ndistributed inversion: {:.3}s",
        parallel_time.as_secs_f64()
    );
    println!(
        "speedup: {:.2}x (paper's Table 2: 1.60x at N=250 up to 2.73x at N=500)",
        serial_time.as_secs_f64() / parallel_time.as_secs_f64()
    );
    println!(
        "verification: H * H^-1 == I exactly: {}",
        (&h * &distributed) == Matrix::identity(n)
    );
}
