//! The paper's second application: interpreting X-ray diffractometry of
//! carbonaceous films (§4, refs [10-11]).
//!
//! Scattering curves for candidate nanostructures are computed in parallel
//! by a *grid-backed* service; the mixture fit runs on a *cluster-backed*
//! service. The synthetic film stands in for the proprietary tokamak
//! measurements (see DESIGN.md), planted so the ground truth is known.
//!
//! Run with: `cargo run --release -p mathcloud-examples --bin xray_analysis`

use std::time::{Duration, Instant};

use mathcloud_bench::xrayservices::spawn_xray_server;
use mathcloud_client::ServiceClient;
use mathcloud_json::{json, Value};

fn main() {
    let server = spawn_xray_server();
    let base = server.base_url();
    println!("x-ray services online at {base}");

    let scatter = ServiceClient::connect(&format!("{base}/services/xray-scatter")).expect("url");
    let fit = ServiceClient::connect(&format!("{base}/services/xray-fit")).expect("url");

    // Candidate structures: the classes from the paper's analysis window.
    let candidates = [
        (
            "toroid R=1.0 r=0.45 (aspect 2.2)",
            json!({"kind": "toroid", "major_r": 1.0, "minor_r": 0.45}),
        ),
        (
            "toroid R=2.0 r=0.25 (aspect 8.0)",
            json!({"kind": "toroid", "major_r": 2.0, "minor_r": 0.25}),
        ),
        (
            "tube   r=0.5 l=3.0",
            json!({"kind": "tube", "radius": 0.5, "length": 3.0}),
        ),
        ("sphere r=0.8", json!({"kind": "sphere", "radius": 0.8})),
        ("flake  a=1.5", json!({"kind": "flake", "side": 1.5})),
    ];

    // Fan out: one grid job per candidate, all submitted before any is
    // polled — the "parallel calculations of scattering curves" step.
    let t0 = Instant::now();
    let jobs: Vec<_> = candidates
        .iter()
        .map(|(label, s)| {
            let job = scatter
                .submit(&json!({"structure": (s.clone()), "q_points": 96}))
                .expect("submit scatter");
            println!("submitted scattering job for {label}: {}", job.job_url());
            job
        })
        .collect();
    let curves: Vec<Vec<f64>> = jobs
        .into_iter()
        .map(|job| {
            let rep = job.wait(Duration::from_secs(120)).expect("scatter job");
            rep.outputs
                .expect("outputs")
                .get("curve")
                .expect("curve")
                .as_array()
                .expect("array")
                .iter()
                .map(|v| v.as_f64().expect("number"))
                .collect()
        })
        .collect();
    println!(
        "all {} curves ready in {:.3}s\n",
        curves.len(),
        t0.elapsed().as_secs_f64()
    );

    // The "measured" film: dominated by the low-aspect-ratio toroid.
    let truth = [0.55, 0.05, 0.20, 0.15, 0.05];
    let film = mathcloud_xray::synthesize_film(&curves, &truth, 0.015, 7);

    // Fit on the cluster-backed optimization service.
    let basis_value = Value::Array(
        curves
            .iter()
            .map(|c| Value::Array(c.iter().map(|&x| Value::from(x)).collect()))
            .collect(),
    );
    let film_value = Value::Array(film.iter().map(|&x| Value::from(x)).collect());
    let rep = fit
        .call(
            &json!({"observed": film_value, "basis": basis_value}),
            Duration::from_secs(120),
        )
        .expect("fit job");
    let outputs = rep.outputs.expect("outputs");
    let fractions: Vec<f64> = outputs
        .get("fractions")
        .expect("fractions")
        .as_array()
        .expect("array")
        .iter()
        .map(|v| v.as_f64().expect("number"))
        .collect();

    println!("{:>36} {:>9} {:>9}", "structure", "planted", "fitted");
    for ((label, _), (want, got)) in candidates.iter().zip(truth.iter().zip(&fractions)) {
        println!("{label:>36} {want:>9.2} {got:>9.2}");
    }
    let dominant = fractions
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("nonempty")
        .0;
    println!(
        "\ndominant: {} — the paper's conclusion was \"few-nanometer-wide carbon toroids\"\n\
         of low aspect ratio dominating the deposited films",
        candidates[dominant].0
    );
}
