//! federate_demo: a long-running catalogue federating live containers.
//!
//! Starts two everest containers (`alpha` with `double`, `beta` with
//! `triple`), registers them — plus one dead address — in a catalogue, turns
//! on the availability monitor, and serves the catalogue's REST interface
//! until killed, so the federation endpoints can be explored interactively:
//!
//! ```text
//! cargo run -p mathcloud-examples --bin federate_demo [addr]
//! curl http://127.0.0.1:<port>/metrics/federated     # merged Prometheus text
//! curl -i http://127.0.0.1:<port>/health/all         # 207 while the dead target is down
//! curl http://127.0.0.1:<port>/services              # the registry itself
//! ```
//!
//! `addr` defaults to `127.0.0.1:0` (a free port, printed on startup).

use std::net::TcpListener;
use std::time::Duration;

use mathcloud_catalogue::{router, Catalogue, ScrapeConfig};
use mathcloud_core::{Parameter, ServiceDescription};
use mathcloud_everest::adapter::NativeAdapter;
use mathcloud_everest::Everest;
use mathcloud_json::{json, Schema, Value};

fn container(name: &'static str, service: &'static str, factor: i64) -> Everest {
    let e = Everest::with_handlers(name, 2);
    e.deploy(
        ServiceDescription::new(service, "multiplies an integer")
            .input(Parameter::new("n", Schema::integer()))
            .output(Parameter::new("out", Schema::integer()))
            .tag("math"),
        NativeAdapter::from_fn(move |inputs, _| {
            let n = inputs.get("n").and_then(Value::as_i64).unwrap_or(0);
            Ok([("out".to_string(), json!(n * factor))]
                .into_iter()
                .collect())
        }),
    );
    e
}

/// A port that refuses connections: bind, record, drop.
fn dead_port() -> u16 {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap().port()
}

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:0".to_string());

    let alpha = mathcloud_everest::serve(container("alpha", "double", 2), "127.0.0.1:0", None)
        .expect("serve alpha");
    let beta = mathcloud_everest::serve(container("beta", "triple", 3), "127.0.0.1:0", None)
        .expect("serve beta");
    let dead = dead_port();

    let catalogue = Catalogue::with_scrape_config(ScrapeConfig {
        per_target_deadline: Duration::from_millis(750),
        max_workers: 4,
    });
    catalogue.register(
        &format!("{}/services/double", alpha.base_url()),
        ServiceDescription::new("double", "doubles an integer"),
        &["math"],
    );
    catalogue.register(
        &format!("{}/services/triple", beta.base_url()),
        ServiceDescription::new("triple", "triples an integer"),
        &["math"],
    );
    catalogue.register(
        &format!("http://127.0.0.1:{dead}/services/ghost"),
        ServiceDescription::new("ghost", "a registered but dead service"),
        &[],
    );

    let monitor = catalogue.start_monitor(Duration::from_secs(5));
    let server = mathcloud_http::Server::bind(&addr, router(catalogue)).expect("bind catalogue");
    let base = server.base_url();

    println!("catalogue listening at {base}");
    println!("  alpha container     {}", alpha.base_url());
    println!("  beta container      {}", beta.base_url());
    println!("  dead registration   http://127.0.0.1:{dead} (always down)");
    println!();
    println!("try:");
    println!("  curl {base}/services");
    println!("  curl {base}/metrics/federated");
    println!("  curl -i {base}/health/all        # 207: the ghost target is down");
    println!("  curl '{base}/health/all?deadline_ms=100'");
    println!();
    println!("serving until killed (ctrl-c)…");

    // `monitor`, `server` and the containers live for the rest of the process.
    let _keepalive = (monitor, server, alpha, beta);
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
